(** Conflict-driven clause-learning SAT solver in the miniSAT style the
    course's SAT portal deployed: two-watched-literal propagation, first-UIP
    conflict analysis, VSIDS branching, phase saving, Luby restarts and
    activity-based learned-clause deletion.

    Each feature can be switched off through {!config} - the knockouts used
    by the ablation benches (a solver with learning, VSIDS and restarts all
    disabled behaves like naive DPLL with watched literals). *)

type config = {
  use_learning : bool;
      (** [false]: on conflict, learn only the negation of the current
          decisions instead of the first-UIP clause. *)
  use_vsids : bool;  (** [false]: branch on the lowest-index unassigned var. *)
  use_restarts : bool;  (** Luby-sequence restarts, unit 100 conflicts. *)
  use_phase_saving : bool;
  max_conflicts : int option;  (** Give up ([Unknown]) after this many. *)
}

val default_config : config
(** Everything on, no conflict budget. *)

type result =
  | Sat of bool array  (** Model indexed by variable; index 0 unused. *)
  | Unsat
  | Unknown  (** Conflict budget exhausted. *)

type stats = {
  decisions : int;
  conflicts : int;
  propagations : int;
  restarts : int;
  learned : int;  (** Learned clauses currently in the database. *)
}

val solve : ?config:config -> Cnf.t -> result * stats

val is_sat : Cnf.t -> bool
(** Convenience wrapper; treats [Unknown] as impossible (no budget). *)

val stats : unit -> (string * int) list
(** Process-wide cumulative counters summed over every completed
    {!solve} call: [solves], [decisions], [conflicts], [propagations],
    [restarts]. Registered as the {!Vc_util.Telemetry} probe
    ["sat.solver"]. *)
