lib/multilevel/opt.ml: List Vc_cube Vc_network Vc_two_level
