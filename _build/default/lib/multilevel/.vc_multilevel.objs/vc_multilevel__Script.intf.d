lib/multilevel/script.mli: Vc_network
