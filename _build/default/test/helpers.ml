(* Shared test utilities: qcheck generators for Boolean expressions, cube
   covers and CNF, plus common alcotest shorthands. *)

module Expr = Vc_cube.Expr
module Cube = Vc_cube.Cube
module Cover = Vc_cube.Cover

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let prop ?(count = 100) name gen law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen law)

(* ------------------------------------------------------------------ *)
(* expression generator over variables v0..v(k-1)                      *)
(* ------------------------------------------------------------------ *)

let var_names k = List.init k (Printf.sprintf "v%d")

let expr_gen ?(max_vars = 4) ?(depth = 5) () =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> Expr.Var (Printf.sprintf "v%d" i)) (int_bound (max_vars - 1));
        map (fun b -> Expr.Const b) bool;
      ]
  in
  let rec node d =
    if d = 0 then leaf
    else
      frequency
        [
          (1, leaf);
          (2, map (fun e -> Expr.Not e) (node (d - 1)));
          (3, map2 (fun a b -> Expr.And (a, b)) (node (d - 1)) (node (d - 1)));
          (3, map2 (fun a b -> Expr.Or (a, b)) (node (d - 1)) (node (d - 1)));
          (1, map2 (fun a b -> Expr.Xor (a, b)) (node (d - 1)) (node (d - 1)));
        ]
  in
  node depth

let arbitrary_expr ?max_vars ?depth () =
  QCheck.make
    ~print:Expr.to_string
    (expr_gen ?max_vars ?depth ())

(* ------------------------------------------------------------------ *)
(* cover generator                                                      *)
(* ------------------------------------------------------------------ *)

let cube_string_gen nvars =
  let open QCheck.Gen in
  let field = oneofl [ '0'; '1'; '-'; '-' ] in
  map
    (fun chars -> String.init nvars (fun i -> List.nth chars i))
    (list_repeat nvars field)

let cover_gen ?(nvars = 4) ?(max_cubes = 6) () =
  let open QCheck.Gen in
  map
    (fun cubes -> Cover.of_strings nvars cubes)
    (list_size (int_range 0 max_cubes) (cube_string_gen nvars))

let arbitrary_cover ?nvars ?max_cubes () =
  QCheck.make
    ~print:(fun f -> String.concat " + " ("" :: Cover.to_strings f))
    (cover_gen ?nvars ?max_cubes ())

(* ------------------------------------------------------------------ *)
(* CNF generator                                                        *)
(* ------------------------------------------------------------------ *)

let cnf_gen =
  let open QCheck.Gen in
  int_range 0 1_000_000 >|= fun seed ->
  Vc_sat.Cnf.random_ksat ~seed ~num_vars:10
    ~num_clauses:(35 + (seed mod 20))
    ~k:3

let arbitrary_cnf = QCheck.make ~print:Vc_sat.Cnf.to_dimacs cnf_gen

let brute_force_sat (f : Vc_sat.Cnf.t) =
  let n = f.Vc_sat.Cnf.num_vars in
  let a = Array.make (n + 1) false in
  let rec go v =
    if v > n then Vc_sat.Cnf.eval f a
    else begin
      a.(v) <- true;
      go (v + 1)
      ||
      begin
        a.(v) <- false;
        go (v + 1)
      end
    end
  in
  go 1

(* ------------------------------------------------------------------ *)
(* random small networks                                                *)
(* ------------------------------------------------------------------ *)

let random_network seed =
  let rng = Vc_util.Rng.create seed in
  let gen = expr_gen ~max_vars:4 ~depth:4 () in
  let state = Random.State.make [| seed |] in
  let e1 = gen state and e2 = gen state in
  ignore rng;
  Vc_network.Network.of_exprs
    ~name:(Printf.sprintf "rand%d" seed)
    ~inputs:(var_names 4)
    [ ("out0", Expr.Or (e1, Expr.Var "v0")); ("out1", Expr.And (e2, Expr.Var "v1")) ]
