(* Global, single-threaded instrumentation state. Everything lives in
   plain hashtables keyed by flat names; renderers sort on the way out. *)

let set_clock = Clock.set
let now = Clock.now

(* ------------------------------------------------------------------ *)
(* counters                                                            *)
(* ------------------------------------------------------------------ *)

let counter_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64

let incr ?(by = 1) name =
  match Hashtbl.find_opt counter_tbl name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add counter_tbl name (ref by)

let counter name =
  match Hashtbl.find_opt counter_tbl name with Some r -> !r | None -> 0

let counters () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counter_tbl []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* timers                                                              *)
(* ------------------------------------------------------------------ *)

type timer_summary = {
  count : int;
  total_s : float;
  mean_s : float;
  p50_s : float;
  p90_s : float;
  max_s : float;
}

(* raw samples, newest first; summarized lazily by the renderers *)
let timer_tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 64

let observe name dt =
  match Hashtbl.find_opt timer_tbl name with
  | Some l -> l := dt :: !l
  | None -> Hashtbl.add timer_tbl name (ref [ dt ])

(* The clock is wall time, not monotonic: an NTP step mid-measurement can
   make [now () -. t0] negative, so computed durations clamp at zero. *)
let elapsed_since t0 = Float.max 0.0 (now () -. t0)

let time name f =
  let t0 = now () in
  match f () with
  | v ->
    observe name (elapsed_since t0);
    v
  | exception e ->
    observe name (elapsed_since t0);
    raise e

let summarize samples =
  {
    count = List.length samples;
    total_s = List.fold_left ( +. ) 0.0 samples;
    mean_s = Stats.mean samples;
    p50_s = Stats.percentile samples 50.0;
    p90_s = Stats.percentile samples 90.0;
    max_s = Stats.maximum samples;
  }

let timer name =
  Option.map (fun l -> summarize !l) (Hashtbl.find_opt timer_tbl name)

let timers () =
  Hashtbl.fold (fun k l acc -> (k, summarize !l) :: acc) timer_tbl []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* trace spans                                                         *)
(* ------------------------------------------------------------------ *)

type span = {
  span_name : string;
  start_s : float;
  duration_s : float;
  attrs : (string * string) list;
  children : span list;
}

type open_span = {
  o_name : string;
  o_start : float;
  o_attrs : (string * string) list;
  mutable o_children : span list; (* newest first *)
}

let span_stack : open_span list ref = ref []
let root_spans : span list ref = ref [] (* newest first *)

let with_span ?(attrs = []) name f =
  let o = { o_name = name; o_start = now (); o_attrs = attrs; o_children = [] } in
  span_stack := o :: !span_stack;
  let finish extra =
    (match !span_stack with _ :: rest -> span_stack := rest | [] -> ());
    let s =
      {
        span_name = o.o_name;
        start_s = o.o_start;
        duration_s = elapsed_since o.o_start;
        attrs = o.o_attrs @ extra;
        children = List.rev o.o_children;
      }
    in
    match !span_stack with
    | parent :: _ -> parent.o_children <- s :: parent.o_children
    | [] -> root_spans := s :: !root_spans
  in
  match f () with
  | v ->
    finish [];
    v
  | exception e ->
    finish [ ("error", Printexc.to_string e) ];
    raise e

let timed_span ?attrs name f = time name (fun () -> with_span ?attrs name f)

let spans () = List.rev !root_spans

(* ------------------------------------------------------------------ *)
(* probes                                                              *)
(* ------------------------------------------------------------------ *)

let probe_tbl : (string, unit -> (string * int) list) Hashtbl.t =
  Hashtbl.create 16

let register_probe name f = Hashtbl.replace probe_tbl name f

let probes () =
  Hashtbl.fold (fun k f acc -> (k, f ()) :: acc) probe_tbl []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* renderers                                                           *)
(* ------------------------------------------------------------------ *)

let report () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "== telemetry report ==\n";
  let cs = counters () in
  if cs <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-40s %10d\n" k v))
      cs
  end;
  let ts = timers () in
  if ts <> [] then begin
    Buffer.add_string b
      "timers (count / total ms / mean ms / p50 ms / p90 ms / max ms):\n";
    List.iter
      (fun (k, s) ->
        Buffer.add_string b
          (Printf.sprintf "  %-40s %6d %9.2f %8.3f %8.3f %8.3f %8.3f\n" k
             s.count (1e3 *. s.total_s) (1e3 *. s.mean_s) (1e3 *. s.p50_s)
             (1e3 *. s.p90_s) (1e3 *. s.max_s)))
      ts
  end;
  let ps = probes () in
  if ps <> [] then begin
    Buffer.add_string b "kernel probes:\n";
    List.iter
      (fun (name, kvs) ->
        Buffer.add_string b (Printf.sprintf "  %s:\n" name);
        List.iter
          (fun (k, v) ->
            Buffer.add_string b (Printf.sprintf "    %-36s %10d\n" k v))
          kvs)
      ps
  end;
  Buffer.add_string b
    (Printf.sprintf "trace spans recorded: %d\n" (List.length !root_spans));
  Buffer.contents b

(* JSON text is built through the shared Vc_util.Json emitters, so the
   layer stays free of third-party dependencies. *)
let jstr = Json.str
let jfloat = Json.num
let jobj = Json.obj
let jarr = Json.arr

let summary_json s =
  jobj
    [
      ("count", string_of_int s.count);
      ("total_s", jfloat s.total_s);
      ("mean_s", jfloat s.mean_s);
      ("p50_s", jfloat s.p50_s);
      ("p90_s", jfloat s.p90_s);
      ("max_s", jfloat s.max_s);
    ]

let to_json () =
  jobj
    [
      ( "counters",
        jobj (List.map (fun (k, v) -> (k, string_of_int v)) (counters ())) );
      ("timers", jobj (List.map (fun (k, s) -> (k, summary_json s)) (timers ())));
      ( "probes",
        jobj
          (List.map
             (fun (name, kvs) ->
               (name, jobj (List.map (fun (k, v) -> (k, string_of_int v)) kvs)))
             (probes ())) );
      ("spans", string_of_int (List.length !root_spans));
    ]

let rec span_json s =
  jobj
    [
      ("name", jstr s.span_name);
      ("start_s", jfloat s.start_s);
      ("duration_s", jfloat s.duration_s);
      ("attrs", jobj (List.map (fun (k, v) -> (k, jstr v)) s.attrs));
      ("children", jarr (List.map span_json s.children));
    ]

let spans_to_json () = jobj [ ("spans", jarr (List.map span_json (spans ()))) ]

(* ------------------------------------------------------------------ *)
(* control / CLI                                                       *)
(* ------------------------------------------------------------------ *)

let reset () =
  Hashtbl.reset counter_tbl;
  Hashtbl.reset timer_tbl;
  span_stack := [];
  root_spans := []

let cli_parse argv =
  let stats = ref false and trace = ref None and journal = ref None in
  let rec strip acc = function
    | [] -> List.rev acc
    | "--stats" :: rest ->
      stats := true;
      strip acc rest
    | [ "--trace" ] ->
      prerr_endline "error: --trace requires a FILE argument";
      exit 2
    | "--trace" :: file :: rest ->
      trace := Some file;
      strip acc rest
    | [ "--journal" ] ->
      prerr_endline "error: --journal requires a FILE argument";
      exit 2
    | "--journal" :: file :: rest ->
      journal := Some file;
      strip acc rest
    | a :: rest -> strip (a :: acc) rest
  in
  match Array.to_list argv with
  | [] -> (argv, false, None, None)
  | prog :: args ->
    let kept = strip [] args in
    (Array.of_list (prog :: kept), !stats, !trace, !journal)

let cli argv =
  let argv, stats, trace, journal = cli_parse argv in
  Journal.install_crash_handler ();
  if stats then at_exit (fun () -> prerr_string (report ()));
  (match trace with
  | Some file ->
    at_exit (fun () ->
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc (spans_to_json ())))
  | None -> ());
  (match journal with Some file -> Journal.open_jsonl file | None -> ());
  argv
