(** Variable-ordering experiments: the lectures' "a good order is the
    difference between linear and exponential BDDs" point, plus a sifting
    optimizer.

    For teaching-scale functions we implement sifting by rebuilding: moving
    one variable through every position of the order and rebuilding the BDD
    to measure each size. Quadratic in rebuilds but simple, and exact with
    respect to the size metric. *)

val build_size : Vc_cube.Expr.t -> string list -> int
(** [build_size e order] is the node count of [e]'s BDD under [order].
    Variables of [e] missing from [order] are appended in appearance
    order. *)

val sift : Vc_cube.Expr.t -> string list -> string list * int
(** [sift e order] greedily sifts each variable (largest-support first) to
    its best position, repeating until no single move improves; returns the
    improved order and its size. *)

val random_restarts : seed:int -> tries:int -> Vc_cube.Expr.t -> string list -> string list * int
(** Baseline for the ordering ablation: best of [tries] random orders. *)

val interleaved_order : int -> string -> string -> string list
(** [interleaved_order n a b] is [a0; b0; a1; b1; ...]: the good order for
    comparators/adders used in the lecture's demonstration. *)

val blocked_order : int -> string -> string -> string list
(** [blocked_order n a b] is [a0..a(n-1); b0..b(n-1)]: the bad order. *)
