type point = { layer : int; x : int; y : int }

type cost_params = {
  step : int;
  bend : int;
  via : int;
  wrong_way : int;
}

let default_costs = { step = 1; bend = 1; via = 3; wrong_way = 2 }

(* cells.(layer).(y * width + x): -1 free, -2 obstacle, >= 0 net id *)
type t = {
  w : int;
  h : int;
  cp : cost_params;
  cells : int array array;
}

let create ?(costs = default_costs) ~width ~height () =
  if width <= 0 || height <= 0 then invalid_arg "Grid.create: empty grid";
  {
    w = width;
    h = height;
    cp = costs;
    cells = Array.init 2 (fun _ -> Array.make (width * height) (-1));
  }

let width g = g.w

let height g = g.h

let costs g = g.cp

let in_bounds g p =
  p.layer >= 0 && p.layer < 2 && p.x >= 0 && p.x < g.w && p.y >= 0 && p.y < g.h

let idx g p = (p.y * g.w) + p.x

let add_obstacle g p =
  if not (in_bounds g p) then invalid_arg "Grid.add_obstacle: out of bounds";
  g.cells.(p.layer).(idx g p) <- -2

let is_obstacle g p = in_bounds g p && g.cells.(p.layer).(idx g p) = -2

let occupant g p =
  if not (in_bounds g p) then None
  else begin
    let v = g.cells.(p.layer).(idx g p) in
    if v >= 0 then Some v else None
  end

let occupy g net p =
  if not (in_bounds g p) then invalid_arg "Grid.occupy: out of bounds";
  let v = g.cells.(p.layer).(idx g p) in
  if v = -2 then invalid_arg "Grid.occupy: obstacle"
  else if v >= 0 && v <> net then invalid_arg "Grid.occupy: cell owned by another net"
  else g.cells.(p.layer).(idx g p) <- net

let release_net g net =
  Array.iter
    (fun layer ->
      Array.iteri (fun i v -> if v = net then layer.(i) <- -1) layer)
    g.cells

let free_for g net p =
  in_bounds g p
  &&
  let v = g.cells.(p.layer).(idx g p) in
  v = -1 || v = net

let copy g = { g with cells = Array.map Array.copy g.cells }
