lib/mooc/survey.ml: Buffer Char Hashtbl List Option Printf String Vc_util
