(** The open-loop replay engine behind [bin/vcload]: several client
    domains replay a {!Trace} against a [vcserve] listener over TCP at
    the trace's stated offered load, and the run is reduced to a
    machine-readable report with per-outcome latency percentiles and
    the shed rate.

    {b Open loop.} Each request's send time comes from the trace, never
    from the previous response: a client that falls behind does not
    slow the offered load down, and latency is measured from the
    {e scheduled} send time, so queueing delay a saturated server
    induces shows up in the percentiles instead of being silently
    absorbed (the classic coordinated-omission correction).

    {b Work division.} Trace items are partitioned round-robin across
    the client domains ([it_seq mod clients]); each domain re-runs the
    (cheap, constant-memory) trace generator and skips the items that
    are not its own, so no materialized trace is ever shared - the
    replay holds a few latency arrays, not the trace. *)

type config = {
  lg_host : string;
  lg_port : int;
  lg_clients : int;  (** Client domains, one TCP connection each. *)
  lg_spec : Trace.spec;
  lg_time_scale : float;
      (** Multiplier on trace timestamps: [0.5] replays twice as fast
          (doubling the offered rate), [1.0] replays in real time. *)
}

type report = {
  rp_seed : int;
      (** The trace's RNG seed - republished in the report (and its
          JSON header) so the replay is reproducible and its
          deterministic per-submission trace ids
          ({!Vc_util.Trace_ctx.mint_deterministic}) can be re-derived
          offline. *)
  rp_trace_scheme : string;
      (** {!Vc_util.Trace_ctx.scheme} - how the ids were minted. *)
  rp_offered_rps : float;  (** From the spec (after time scaling). *)
  rp_achieved_rps : float;  (** Completed requests / wall-clock. *)
  rp_wall_s : float;
  rp_clients : int;
  rp_total : int;
  rp_executed : int;
  rp_cache_hit : int;
  rp_rejected : int;
  rp_rejected_by_label : (string * int) list;
      (** Rejections per wire label ([overloaded], [rate_limited],
          [deadline], [runaway], ...), sorted. *)
  rp_errors : int;  (** Transport failures (connection reset, ...). *)
  rp_shed_rate : float;  (** Rejected / total (0 when total is 0). *)
  rp_latency : Vc_util.Journal_query.latency_stats option;
  rp_by_outcome : (string * Vc_util.Journal_query.latency_stats) list;
      (** Keyed [executed] / [cache_hit] / [rejected], sorted - the
          same stats record [vcstat summary] computes offline, via the
          shared {!Vc_util.Journal_query.latency_stats_of}. *)
}

val run : config -> report
(** Replay the trace. Each planned submission is tagged with a
    deterministic trace id
    ({!Vc_util.Trace_ctx.mint_deterministic} over the spec's seed and
    the item's sequence number), sent as the wire [TRACE] operand, and
    emits one journal event (component ["vcload"], name
    ["replay.request"], attrs [trace_id], [tool], [outcome],
    [latency_s] and [reason] for rejections) so the run is analyzable
    offline with [vcstat summary] and joinable against the server
    journal with [vcstat request]; counters [vcload.executed] /
    [vcload.cache_hit] / [vcload.rejected] / [vcload.errors] and the
    SLO gauges of {!set_slo_gauges} are maintained on telemetry.
    @raise Unix.Unix_error when the server cannot be reached. *)

val render_report : report -> string
(** Human-readable run summary (what [vcload] prints). *)

val report_to_json : report -> string

val set_slo_gauges : report -> unit
(** Publish the report's SLO surface as telemetry gauges:
    [loadgen.slo.p99_ms] (p99 latency over all requests, milliseconds)
    and [loadgen.slo.shed_rate] - the two gauges
    {!Vc_util.Regress.compare_json} gates lower-is-better - plus
    informational [loadgen.offered_rps] / [loadgen.achieved_rps]. *)
