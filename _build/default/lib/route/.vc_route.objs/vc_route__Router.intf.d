lib/route/router.mli: Grid Maze
