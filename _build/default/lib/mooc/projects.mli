(** The four auto-graded software design projects (Fig. 5), each with its
    downloadable assignment, a reference solution produced by this
    repository's own libraries, and a gradable-unit test list for
    {!Autograder}. *)

type project = {
  p_id : int;
  p_title : string;
  p_assignment : string;  (** What the participant downloads. *)
  p_reference : unit -> string;  (** A full-credit submission. *)
  p_grader : Autograder.unit_test list;
}

val project1 : project
(** Boolean data structures and computation (URP, PCN): complement covers
    and answer tautology questions. *)

val project2 : project
(** BDD-based formal network repair: name a 2-input gate fixing each
    broken netlist. *)

val project3 : project
(** Quadratic placement on synthetic MCNC-profile netlists: upload legal
    placements beating HPWL thresholds. *)

val project4 : project
(** Two-layer maze routing with vias and preferred directions: upload
    routed paths passing the Fig. 6 unit-test battery. *)

val all : project list

val router_unit_tests : (string * Vc_route.Router.problem) list
(** The Fig. 6 battery: short wires, vertical/horizontal segments, bends,
    obstacle detours, forced vias, multi-pin nets, crossing nets. *)

val render_fig5 : unit -> string
(** Summary card for the four projects. *)

val render_fig6 : unit -> string
(** ASCII rendering of each router unit test, solved by the reference
    router. *)
