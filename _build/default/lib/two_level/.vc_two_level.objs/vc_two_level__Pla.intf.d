lib/two_level/pla.mli: Vc_cube
