module Network = Vc_network.Network
module A = Algebraic

(* Literal cost of rewriting [sop] with [divisor] named by a fresh positive
   literal: quotient literals + one new-node literal per quotient cube +
   remainder literals. Negative if the division is trivial. *)
let rewrite_saving sop divisor =
  let q, r = A.divide sop divisor in
  if q = [] then 0
  else
    A.literal_count sop
    - (A.literal_count q + List.length q + A.literal_count r)

let rewrite_with sop divisor new_name =
  let q, r = A.divide sop divisor in
  assert (q <> []);
  let q' = List.map (fun cube -> (new_name, true) :: cube) q in
  A.normalize (q' @ r)

let node_sops t =
  List.filter_map
    (fun name -> Option.map (fun n -> (name, A.of_node n)) (Network.find_node t name))
    (Network.node_names t)

let set_node t name sop =
  let fanins = A.support sop in
  Network.add_node t ~name ~fanins ~func:(A.to_cover ~fanins sop)

(* One greedy round: pick the best divisor among [candidates], apply it to
   every node it helps.  Returns true if a divisor was extracted. *)
let extract_round t candidates new_name =
  let sops = node_sops t in
  let total_saving divisor =
    List.fold_left
      (fun acc (_, sop) -> acc + max 0 (rewrite_saving sop divisor))
      (- (A.literal_count divisor))
      sops
  in
  let best =
    List.fold_left
      (fun acc divisor ->
        let s = total_saving divisor in
        match acc with
        | Some (_, bs) when bs >= s -> acc
        | _ when s > 0 -> Some (divisor, s)
        | _ -> acc)
      None candidates
  in
  match best with
  | None -> false
  | Some (divisor, _) ->
    set_node t new_name divisor;
    List.iter
      (fun (name, sop) ->
        if rewrite_saving sop divisor > 0 then
          set_node t name (rewrite_with sop divisor new_name))
      sops;
    true

let kernel_candidates t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (_, sop) ->
      List.iter
        (fun (_, k) ->
          if List.length k >= 2 then Hashtbl.replace tbl (A.normalize k) ())
        (A.kernels sop))
    (node_sops t);
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []

let cube_candidates t =
  (* pairwise intersections of cubes with >= 2 common literals *)
  let tbl = Hashtbl.create 64 in
  let all_cubes = List.concat_map (fun (_, sop) -> sop) (node_sops t) in
  let arr = Array.of_list all_cubes in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then begin
            let common = List.filter (fun l -> List.mem l b) a in
            if List.length common >= 2 then
              Hashtbl.replace tbl (List.sort compare common) ()
          end)
        arr)
    arr;
  Hashtbl.fold (fun c () acc -> [ c ] :: acc) tbl []

let run_extraction t candidates_of ~max_new_nodes ~prefix =
  let rec go i =
    if i >= max_new_nodes then i
    else begin
      let name = Printf.sprintf "%s%d" prefix i in
      (* regenerate candidates each round: the network changed *)
      if extract_round t (candidates_of t) name then go (i + 1) else i
    end
  in
  go 0

let fresh_prefix t prefix =
  (* avoid clashing with existing node names *)
  let rec unique k =
    let p = if k = 0 then prefix else Printf.sprintf "%s%d_" prefix k in
    let clash =
      List.exists
        (fun n -> String.length n >= String.length p
                  && String.sub n 0 (String.length p) = p)
        (Network.node_names t)
    in
    if clash then unique (k + 1) else p
  in
  unique 0

let extract_kernels ?(max_new_nodes = 1000) ?(prefix = "k_") t =
  run_extraction t kernel_candidates ~max_new_nodes
    ~prefix:(fresh_prefix t prefix)

let extract_cubes ?(max_new_nodes = 1000) ?(prefix = "c_") t =
  run_extraction t cube_candidates ~max_new_nodes
    ~prefix:(fresh_prefix t prefix)

let resubstitute t =
  let rewrites = ref 0 in
  let rec stable () =
    let sops = node_sops t in
    let applied = ref false in
    List.iter
      (fun (name, _) ->
        List.iter
          (fun (divisor_name, divisor) ->
            if divisor_name <> name && List.length divisor >= 1 then begin
              (* avoid creating a cycle: divisor must not depend on name *)
              let depends =
                let rec reaches seen s =
                  s = name
                  || (not (List.mem s seen))
                     &&
                     match Network.find_node t s with
                     | None -> false
                     | Some n ->
                       List.exists (reaches (s :: seen)) n.Network.fanins
                in
                reaches [] divisor_name
              in
              if not depends then begin
                match Network.find_node t name with
                | None -> ()
                | Some current_node ->
                  let current = A.of_node current_node in
                  if rewrite_saving current divisor > 0 then begin
                    set_node t name (rewrite_with current divisor divisor_name);
                    incr rewrites;
                    applied := true
                  end
              end
            end)
          sops)
      sops;
    if !applied then stable ()
  in
  stable ();
  !rewrites
