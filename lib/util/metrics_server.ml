(* Single-threaded HTTP/1.1 exporter over the stdlib Unix socket API.
   One connection at a time, Connection: close - a scrape is a few KB of
   text, so the simple loop keeps up with any sane scrape interval. *)

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  metrics : unit -> string;
  on_request : string -> unit;
  mutable stopped : bool;
}

let port t = t.bound_port

(* A scraper that hangs up mid-response turns our write into SIGPIPE,
   which would kill the process; ignore it and let write raise EPIPE. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let start ?(addr = "127.0.0.1") ?(announce = true) ?(on_request = ignore)
    ~metrics ~port () =
  ignore_sigpipe ();
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with
  | () -> ()
  | exception e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  if announce then
    Printf.eprintf "metrics: serving http://%s:%d/metrics\n%!" addr bound_port;
  { sock; bound_port; metrics; on_request; stopped = false }

(* ------------------------------------------------------------------ *)
(* request/response                                                    *)
(* ------------------------------------------------------------------ *)

(* Read until the end of the request head (blank line) or a size cap;
   we never read a body - every route is GET. Each chunk is scanned
   once, in a window that carries the last 3 bytes of the previous
   chunk (the longest terminator prefix that can span the boundary), so
   the whole head costs O(length) instead of the old rescan-from-zero
   O(length^2). *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let has_terminator s =
    let n = String.length s in
    let rec go i =
      i + 2 <= n
      && ((s.[i] = '\n' && s.[i + 1] = '\n')
         || (i + 4 <= n && String.sub s i 4 = "\r\n\r\n")
         || go (i + 1))
    in
    go 0
  in
  let rec loop carry =
    if Buffer.length buf > 8192 then Buffer.contents buf
    else begin
      let n =
        try Unix.read fd chunk 0 (Bytes.length chunk)
        with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
      in
      if n = 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let window = carry ^ Bytes.sub_string chunk 0 n in
        if has_terminator window then Buffer.contents buf
        else
          let keep = min 3 (String.length window) in
          loop (String.sub window (String.length window - keep) keep)
      end
    end
  in
  loop ""

let request_line head =
  match String.index_opt head '\n' with
  | None -> head
  | Some i -> String.trim (String.sub head 0 i)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      let n = Unix.write fd b off (Bytes.length b - off) in
      go (off + n)
  in
  try go 0 with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

(* ------------------------------------------------------------------ *)
(* extra routes and readiness                                          *)
(* ------------------------------------------------------------------ *)

(* A process-global route registry: subsystems that want a live surface
   (the Timeseries sampler's /varz and /profile) register here without
   the exporter having to depend on them. /readyz consults a
   caller-supplied probe - vcserve flips it to "draining" when graceful
   shutdown starts, so a load balancer stops sending traffic while the
   queue drains. *)

type reply = { rp_status : string; rp_content_type : string; rp_body : string }

let routes_mu = Mutex.create ()
let extra_routes : (string, unit -> reply) Hashtbl.t = Hashtbl.create 8
let ready_probe : (unit -> bool) option ref = ref None

let register_route path handler =
  if String.length path = 0 || path.[0] <> '/' then
    invalid_arg "Metrics_server.register_route: path must start with '/'";
  Mutex.protect routes_mu (fun () -> Hashtbl.replace extra_routes path handler)

let unregister_route path =
  Mutex.protect routes_mu (fun () -> Hashtbl.remove extra_routes path)

let set_ready_probe f = Mutex.protect routes_mu (fun () -> ready_probe := Some f)

let registered_routes () =
  Mutex.protect routes_mu (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) extra_routes [])
  |> List.sort compare

let all_routes () = [ "/metrics"; "/healthz"; "/readyz" ] @ registered_routes ()

let route t line =
  match String.split_on_char ' ' line with
  | meth :: path :: _ when meth <> "GET" ->
    t.on_request path;
    response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
      "method not allowed\n"
  | "GET" :: path :: _ -> begin
    t.on_request path;
    (* strip any query string before routing *)
    let path =
      match String.index_opt path '?' with
      | Some i -> String.sub path 0 i
      | None -> path
    in
    match path with
    | "/metrics" ->
      let body =
        match t.metrics () with
        | body -> body
        | exception e ->
          Printf.sprintf "# metrics renderer failed: %s\n"
            (Printexc.to_string e)
      in
      response ~status:"200 OK"
        ~content_type:"text/plain; version=0.0.4; charset=utf-8" body
    | "/healthz" ->
      response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
    | "/readyz" ->
      let ready =
        match Mutex.protect routes_mu (fun () -> !ready_probe) with
        | None -> true (* no probe installed: alive means ready *)
        | Some probe -> ( try probe () with _ -> false)
      in
      if ready then response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
      else
        response ~status:"503 Service Unavailable" ~content_type:"text/plain"
          "draining\n"
    | path -> begin
      match Mutex.protect routes_mu (fun () -> Hashtbl.find_opt extra_routes path) with
      | Some handler ->
        let rep =
          match handler () with
          | rep -> rep
          | exception e ->
            {
              rp_status = "500 Internal Server Error";
              rp_content_type = "text/plain";
              rp_body =
                Printf.sprintf "route handler failed: %s\n"
                  (Printexc.to_string e);
            }
        in
        response ~status:rep.rp_status ~content_type:rep.rp_content_type
          rep.rp_body
      | None ->
        response ~status:"404 Not Found" ~content_type:"text/plain"
          (Printf.sprintf "not found (try %s)\n"
             (String.concat ", " (all_routes ())))
    end
  end
  | _ ->
    response ~status:"400 Bad Request" ~content_type:"text/plain"
      "bad request\n"

let handle_client t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let head = read_head fd in
      if head <> "" then write_all fd (route t (request_line head)))

(* ------------------------------------------------------------------ *)
(* serving loops                                                       *)
(* ------------------------------------------------------------------ *)

let accept_one t =
  match Unix.accept t.sock with
  | fd, _ ->
    (match handle_client t fd with
    | () -> ()
    | exception e ->
      Printf.eprintf "metrics: request handler failed: %s\n%!"
        (Printexc.to_string e));
    true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> false (* stopped *)
  | exception Unix.Unix_error (Unix.EINVAL, _, _) -> false (* stopped *)

let serve ?max_requests t =
  match max_requests with
  | Some n ->
    let i = ref 0 in
    while !i < n && not t.stopped do
      if accept_one t then incr i else i := n
    done
  | None ->
    let live = ref true in
    while !live && not t.stopped do
      live := accept_one t
    done

let serve_forever t =
  serve t;
  (* only reachable after stop (); behave like a clean shutdown *)
  exit 0

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (* a close from another domain does not wake a blocked accept on
       Linux; poke the listener with a throwaway connection so the
       serving loop observes [stopped] and exits *)
    (try
       let addr =
         match Unix.getsockname t.sock with
         | Unix.ADDR_INET (a, p) -> Unix.ADDR_INET (a, p)
         | other -> other
       in
       let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
         (fun () -> Unix.connect s addr)
     with Unix.Unix_error _ -> ());
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* client                                                              *)
(* ------------------------------------------------------------------ *)

(* The matching one-shot GET, for vctop and the smoke harnesses: the
   exporter speaks Connection: close, so "read to EOF" is the framing. *)
let fetch ?(host = "127.0.0.1") ~port path =
  ignore_sigpipe ();
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      write_all sock
        (Printf.sprintf
           "GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n" path
           host);
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read sock chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        match String.index_opt raw '\n' with
        | Some i -> String.trim (String.sub raw 0 i)
        | None -> String.trim raw
      in
      let body =
        let rec find i =
          if i + 4 > String.length raw then String.length raw
          else if String.sub raw i 4 = "\r\n\r\n" then i + 4
          else find (i + 1)
        in
        let start = find 0 in
        String.sub raw start (String.length raw - start)
      in
      (status, body))
