test/test_network.ml: Alcotest Helpers List Option QCheck String Vc_cube Vc_network
