open Helpers
module Expr = Vc_cube.Expr
module Cube = Vc_cube.Cube
module Cover = Vc_cube.Cover
module Urp = Vc_cube.Urp

(* --------------------------- expr ------------------------------ *)

let parses s expected =
  tc ("parse " ^ s) (fun () ->
      check Alcotest.bool "equivalent" true
        (Expr.equivalent (Expr.parse s) expected))

let expr_tests =
  [
    parses "a & b" (Expr.And (Var "a", Var "b"));
    parses "a + b" (Expr.Or (Var "a", Var "b"));
    parses "a'" (Expr.Not (Var "a"));
    parses "!a | b & c" (Expr.Or (Not (Var "a"), And (Var "b", Var "c")));
    parses "a ^ b" (Expr.Xor (Var "a", Var "b"));
    parses "a b" (Expr.And (Var "a", Var "b"));
    parses "(a | b) (c | d)"
      (Expr.And (Or (Var "a", Var "b"), Or (Var "c", Var "d")));
    parses "1 & a" (Expr.Var "a");
    parses "0 | a" (Expr.Var "a");
    tc "precedence: AND binds tighter than OR" (fun () ->
        check Alcotest.bool "a|bc = a|(bc)" true
          (Expr.equivalent (Expr.parse "a | b & c")
             (Expr.Or (Var "a", And (Var "b", Var "c")))));
    tc "precedence: XOR between AND and OR" (fun () ->
        check Alcotest.bool "a^bc|d" true
          (Expr.equivalent
             (Expr.parse "a ^ b & c | d")
             (Expr.Or (Xor (Var "a", And (Var "b", Var "c")), Var "d"))));
    tc "parse errors" (fun () ->
        List.iter
          (fun s ->
            match Expr.parse s with
            | exception Expr.Parse_error _ -> ()
            | _ -> Alcotest.failf "expected parse error for %S" s)
          [ ""; "a &"; "(a"; "a)"; "&"; "a $ b" ]);
    tc "vars in order" (fun () ->
        check
          Alcotest.(list string)
          "order" [ "b"; "a"; "c" ]
          (Expr.vars (Expr.parse "b & a | b & c")));
    tc "truth table MSB convention" (fun () ->
        (* f = a: true on rows where bit for a (MSB) is set *)
        check
          Alcotest.(array bool)
          "table"
          [| false; false; true; true |]
          (Expr.truth_table [ "a"; "b" ] (Expr.Var "a")));
    tc "of_minterms" (fun () ->
        let f = Expr.of_minterms [ "a"; "b" ] [ 1; 2 ] in
        check
          Alcotest.(array bool)
          "table"
          [| false; true; true; false |]
          (Expr.truth_table [ "a"; "b" ] f));
    prop "parse/to_string round trip" (arbitrary_expr ()) (fun e ->
        Expr.equivalent e (Expr.parse (Expr.to_string e)));
    prop "simplify preserves semantics" (arbitrary_expr ()) (fun e ->
        Expr.equivalent e (Expr.simplify e));
    prop "shannon expansion f = x f_x + x' f_x'" (arbitrary_expr ())
      (fun e ->
        let x = "v0" in
        Expr.equivalent e
          (Expr.Or
             ( And (Var x, Expr.cofactor x true e),
               And (Not (Var x), Expr.cofactor x false e) )));
    prop "boolean difference detects sensitivity" (arbitrary_expr ())
      (fun e ->
        (* df/dx = 0 exactly when both cofactors are equal *)
        let x = "v1" in
        let diff = Expr.boolean_difference x e in
        Expr.equivalent diff (Const false)
        = Expr.equivalent (Expr.cofactor x true e) (Expr.cofactor x false e));
    prop "exists is disjunction of cofactors" (arbitrary_expr ()) (fun e ->
        Expr.equivalent (Expr.exists "v0" e)
          (Expr.Or (Expr.cofactor "v0" true e, Expr.cofactor "v0" false e)));
    prop "forall implies exists" (arbitrary_expr ()) (fun e ->
        let fa = Expr.forall "v0" e and ex = Expr.exists "v0" e in
        Expr.equivalent (Expr.Or (Expr.Not fa, ex)) (Const true));
  ]

(* --------------------------- cube ------------------------------ *)

let all_points n =
  List.init (1 lsl n) (fun row ->
      Array.init n (fun i -> row land (1 lsl (n - 1 - i)) <> 0))

let cube_tests =
  [
    tc "of_string / to_string round trip" (fun () ->
        List.iter
          (fun s -> check Alcotest.string s s (Cube.to_string (Cube.of_string s)))
          [ "01-"; "----"; "1"; "0101" ]);
    tc "universe covers everything" (fun () ->
        let u = Cube.universe 3 in
        List.iter
          (fun p -> check Alcotest.bool "in" true (Cube.eval u p))
          (all_points 3));
    tc "intersect semantics" (fun () ->
        let a = Cube.of_string "1--" and b = Cube.of_string "-0-" in
        check Alcotest.string "10-" "10-" (Cube.to_string (Cube.intersect a b)));
    tc "conflicting literals empty" (fun () ->
        let a = Cube.of_string "1--" and b = Cube.of_string "0--" in
        check Alcotest.bool "empty" true (Cube.is_empty (Cube.intersect a b)));
    tc "contains" (fun () ->
        check Alcotest.bool "bigger contains smaller" true
          (Cube.contains (Cube.of_string "1--") (Cube.of_string "10-"));
        check Alcotest.bool "not reverse" false
          (Cube.contains (Cube.of_string "10-") (Cube.of_string "1--")));
    tc "cofactor" (fun () ->
        let c = Cube.of_string "10-" in
        (match Cube.cofactor c ~var:0 ~value:true with
        | Some c' -> check Alcotest.string "freed" "-0-" (Cube.to_string c')
        | None -> Alcotest.fail "should survive");
        check Alcotest.bool "vanishes" true
          (Cube.cofactor c ~var:0 ~value:false = None));
    tc "minterm count" (fun () ->
        check Alcotest.int "2 free of 5" 4
          (Cube.minterm_count (Cube.of_string "1--00"));
        check Alcotest.int "full cube" 1
          (Cube.minterm_count (Cube.of_string "101")));
    tc "literal count" (fun () ->
        check Alcotest.int "lits" 2 (Cube.literal_count (Cube.of_string "1-0-")));
    tc "of_literals merges duplicates" (fun () ->
        let c = Cube.of_literals 2 [ (0, true); (0, false) ] in
        check Alcotest.bool "contradiction empty" true (Cube.is_empty c));
    tc "complement_literals is the complement" (fun () ->
        let c = Cube.of_string "10-" in
        let pieces = Cube.complement_literals c in
        List.iter
          (fun p ->
            let in_c = Cube.eval c p in
            let in_pieces = List.exists (fun q -> Cube.eval q p) pieces in
            check Alcotest.bool "exactly complement" (not in_c) in_pieces)
          (all_points 3));
  ]

(* --------------------------- cover ----------------------------- *)

let cover_tests =
  [
    tc "eval matches member cubes" (fun () ->
        let f = Cover.of_strings 3 [ "1--"; "-11" ] in
        check Alcotest.bool "101 in" true (Cover.eval f [| true; false; true |]);
        check Alcotest.bool "011 in" true (Cover.eval f [| false; true; true |]);
        check Alcotest.bool "010 out" false
          (Cover.eval f [| false; true; false |]));
    tc "make rejects width mismatch" (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Cover.make: cube width mismatch") (fun () ->
            ignore (Cover.make 3 [ Cube.of_string "10" ])));
    tc "empty cubes dropped" (fun () ->
        let f = Cover.make 2 [ Cube.of_string "@1" ] in
        check Alcotest.int "no cubes" 0 (Cover.num_cubes f));
    tc "polarity" (fun () ->
        let f = Cover.of_strings 3 [ "1-0"; "10-" ] in
        check Alcotest.bool "var0 unate pos" true
          (Cover.var_polarity f 0 = Cover.Unate_pos);
        check Alcotest.bool "var1 unate neg" true
          (Cover.var_polarity f 1 = Cover.Unate_neg);
        check Alcotest.bool "var2 unate neg" true
          (Cover.var_polarity f 2 = Cover.Unate_neg);
        let g = Cover.of_strings 2 [ "1-"; "0-" ] in
        check Alcotest.bool "binate" true (Cover.var_polarity g 0 = Cover.Binate);
        check Alcotest.bool "absent" true (Cover.var_polarity g 1 = Cover.Absent));
    tc "most binate prefers frequency" (fun () ->
        let f = Cover.of_strings 3 [ "11-"; "0-1"; "10-"; "01-" ] in
        check Alcotest.(option int) "var 0" (Some 0) (Cover.most_binate_var f));
    tc "unate cover has no binate var" (fun () ->
        let f = Cover.of_strings 3 [ "1-0"; "-10" ] in
        check Alcotest.bool "unate" true (Cover.is_unate f);
        check Alcotest.(option int) "none" None (Cover.most_binate_var f));
    tc "single cube containment" (fun () ->
        let f = Cover.of_strings 3 [ "1--"; "11-"; "-01" ] in
        let g = Cover.single_cube_containment f in
        check Alcotest.int "absorbed" 2 (Cover.num_cubes g);
        check Alcotest.bool "same function" true (Cover.equivalent f g));
    prop "cofactor agrees on matching points" (arbitrary_cover ()) (fun f ->
        List.for_all
          (fun p ->
            let sub = Cover.cofactor f ~var:0 ~value:p.(0) in
            Cover.eval f p = Cover.eval sub p)
          (all_points 4));
    prop "of_expr/to_expr round trip" (arbitrary_expr ()) (fun e ->
        let order = var_names 4 in
        let f = Cover.of_expr order e in
        Expr.equivalent (Cover.to_expr order f) e);
    prop "minterms match truth table" (arbitrary_cover ()) (fun f ->
        let tt = Cover.truth_table f in
        let ms = Cover.minterms f in
        Array.to_list (Array.mapi (fun i v -> (i, v)) tt)
        |> List.for_all (fun (i, v) -> List.mem i ms = v));
  ]

(* ---------------------------- urp ------------------------------ *)

let tautology_brute f = Array.for_all (fun v -> v) (Cover.truth_table f)

let urp_tests =
  [
    tc "x + x' is a tautology" (fun () ->
        check Alcotest.bool "taut" true
          (Urp.tautology (Cover.of_strings 1 [ "1"; "0" ])));
    tc "empty cover is not" (fun () ->
        check Alcotest.bool "not taut" false (Urp.tautology (Cover.empty 2)));
    tc "textbook tautology" (fun () ->
        check Alcotest.bool "taut" true
          (Urp.tautology (Cover.of_strings 2 [ "1-"; "-1"; "00" ])));
    prop ~count:300 "URP tautology agrees with truth table"
      (arbitrary_cover ())
      (fun f -> Urp.tautology f = tautology_brute f);
    prop ~count:200 "URP complement is exact" (arbitrary_cover ()) (fun f ->
        let fc = Urp.complement f in
        let tt = Cover.truth_table f and tt_c = Cover.truth_table fc in
        Array.for_all (fun x -> x) (Array.mapi (fun i v -> v <> tt_c.(i)) tt));
    prop ~count:200 "cube_in_cover agrees with semantics"
      (QCheck.pair (arbitrary_cover ()) (arbitrary_cover ()))
      (fun (f, g) ->
        match g.Cover.cubes with
        | [] -> true
        | c :: _ ->
          let sem =
            List.for_all
              (fun p -> (not (Cube.eval c p)) || Cover.eval f p)
              (all_points 4)
          in
          Urp.cube_in_cover c f = sem);
    prop ~count:200 "containment equivalence matches truth tables"
      (QCheck.pair (arbitrary_cover ()) (arbitrary_cover ()))
      (fun (f, g) -> Urp.equivalent f g = Cover.equivalent f g);
    tc "sharp: a # b removes b" (fun () ->
        let a = Cube.universe 2 and b = Cube.of_string "1-" in
        let pieces = Urp.sharp a b in
        List.iter
          (fun p ->
            let expected = not (Cube.eval b p) in
            check Alcotest.bool "semantics" expected
              (List.exists (fun c -> Cube.eval c p) pieces))
          (all_points 2));
    tc "sharp of disjoint cubes is identity" (fun () ->
        let a = Cube.of_string "1-" and b = Cube.of_string "0-" in
        check
          Alcotest.(list string)
          "unchanged" [ "1-" ]
          (List.map Cube.to_string (Urp.sharp a b)));
    prop ~count:200 "intersect is conjunction"
      (QCheck.pair (arbitrary_cover ()) (arbitrary_cover ()))
      (fun (f, g) ->
        let i = Urp.intersect f g in
        List.for_all
          (fun p -> Cover.eval i p = (Cover.eval f p && Cover.eval g p))
          (all_points 4));
    prop ~count:200 "cover_sharp removes exactly the cube" (arbitrary_cover ())
      (fun f ->
        let b = Cube.of_string "1-0-" in
        let s = Urp.cover_sharp f b in
        List.for_all
          (fun p -> Cover.eval s p = (Cover.eval f p && not (Cube.eval b p)))
          (all_points 4));
  ]

let () =
  Alcotest.run "cube"
    [
      ("expr", expr_tests);
      ("cube", cube_tests);
      ("cover", cover_tests);
      ("urp", urp_tests);
    ]
