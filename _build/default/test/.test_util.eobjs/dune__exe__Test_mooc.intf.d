test/test_mooc.mli:
