(** Fiduccia-Mattheyses min-cut bipartitioning on the placement hypergraph,
    the engine behind min-cut placement and a standalone course topic in
    the traditional class. *)

type result = {
  side : bool array;  (** Per cell: [false] = left, [true] = right. *)
  cut : int;  (** Nets with pins on both sides. *)
  passes : int;
}

val cut_size : Pnet.t -> bool array -> int

val bipartition :
  ?seed:int -> ?balance:float -> ?max_passes:int -> Pnet.t -> result
(** [balance] (default 0.1) caps the side-size imbalance at
    [(0.5 +/- balance) * n]. Runs FM passes (gain updates, best-prefix
    rollback) from a random balanced start until a pass stops improving. *)
