lib/util/stats.mli:
