lib/bdd/bdd_script.mli: Bdd
