lib/mooc/demographics.mli:
