(** Continuous profiler: ambient per-domain frame stacks, sampled on a
    timer into folded-stack aggregates and rendered as a flamegraph.

    Instrumented code pushes frames with {!with_frame} (the server
    worker pushes ["worker"], the portal pushes ["cache"] / ["execute"]
    / the tool name beneath it); a sampler tick ({!tick}, driven by
    {!Timeseries.Sampler}) reads every domain's current stack and bumps
    one folded-stack counter per domain - the always-on "where is time
    going" histogram an operator reads from [GET /profile] or renders
    with [vcstat flame].

    The frame hot path is one list cons and one field store; the
    cross-domain stack read at tick time is a benign race on an
    immutable list (documented in the implementation), so profiling
    overhead is near zero whether or not a sampler is running. *)

val register : unit -> unit
(** Publish the calling domain's (initially empty) frame stack to the
    sampler, so the domain's idle time is attributed to ["idle"] from
    the first tick. Worker domains call this when they start;
    {!with_frame} registers implicitly. *)

val with_frame : string -> (unit -> 'a) -> 'a
(** [with_frame name f] pushes [name] onto the calling domain's frame
    stack for the duration of [f] (popped on return or exception).
    Nested calls build the stack the sampler folds. *)

val current_stack : unit -> string list
(** The calling domain's own stack, outermost frame first. *)

val tick : ?journal:bool -> unit -> unit
(** Sample every registered domain's stack once: each domain
    contributes one observation to the folded aggregate (["idle"] when
    its stack is empty). With [journal:true], one
    [profile.sample] journal event ([Debug] severity, component
    ["profile"], attrs [tick]/[stack]/[count]) is emitted per distinct
    stack observed this tick - the offline feed for [vcstat flame]. *)

val ticks : unit -> int
(** Number of {!tick} calls since start/{!reset}. *)

val samples : unit -> int
(** Total per-domain observations across all ticks. *)

val folded : unit -> (string * int) list
(** The aggregate as folded stacks ([["worker;execute;minisat"], 17]),
    most samples first (name-ordered within equal counts). *)

val to_folded_text : (string * int) list -> string
(** Standard folded format, one ["stack count"] line each - the
    [GET /profile] body, directly consumable by external flamegraph
    tooling. *)

val flamegraph_svg :
  ?title:string -> ?ticks:int -> (string * int) list -> string
(** Render folded stacks as a self-contained flamegraph SVG: x = share
    of samples, y = stack depth (root row at the bottom), deterministic
    layout and palette, hover [<title>] per frame. The document carries
    a machine-readable
    [<!-- flamegraph samples=N root_samples=N ticks=T -->] comment
    that CI checks root-frame coverage against. *)

val reset : unit -> unit
(** Drop all aggregates and tick counts, and clear the calling domain's
    own stack (other domains own theirs). Tests only. *)
