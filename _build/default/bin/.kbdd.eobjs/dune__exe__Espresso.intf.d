bin/espresso.mli:
