type unit_test = {
  ut_name : string;
  ut_points : int;
  ut_check : string -> bool * string;
}

type unit_result = {
  ur_name : string;
  ur_passed : bool;
  ur_points : int;
  ur_max : int;
  ur_message : string;
}

type grade = {
  earned : int;
  possible : int;
  units : unit_result list;
}

let make_test ~name ~points check =
  let safe input =
    match check input with
    | result -> result
    | exception Failure msg -> (false, msg)
    | exception Invalid_argument msg -> (false, msg)
    | exception Not_found -> (false, "internal lookup failed")
  in
  { ut_name = name; ut_points = points; ut_check = safe }

module J = Vc_util.Journal

let grade tests submission =
  let units =
    List.map
      (fun t ->
        let passed, message = t.ut_check submission in
        let earned = if passed then t.ut_points else 0 in
        J.emit
          ~severity:(if passed then J.Info else J.Warn)
          ~component:"autograder"
          ~attrs:
            [
              ("unit", t.ut_name);
              ("passed", string_of_bool passed);
              ("earned", string_of_int earned);
              ("possible", string_of_int t.ut_points);
            ]
          "unit.graded";
        {
          ur_name = t.ut_name;
          ur_passed = passed;
          ur_points = earned;
          ur_max = t.ut_points;
          ur_message = message;
        })
      tests
  in
  let earned = List.fold_left (fun acc u -> acc + u.ur_points) 0 units in
  let possible = List.fold_left (fun acc u -> acc + u.ur_max) 0 units in
  J.emit ~component:"autograder"
    ~attrs:
      [
        ("units", string_of_int (List.length units));
        ("earned", string_of_int earned);
        ("possible", string_of_int possible);
      ]
    "grade.done";
  { earned; possible; units }

let render g =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "score: %d / %d\n" g.earned g.possible);
  List.iter
    (fun u ->
      Buffer.add_string buf
        (Printf.sprintf "  [%s] %-32s %d/%d  %s\n"
           (if u.ur_passed then "PASS" else "FAIL")
           u.ur_name u.ur_points u.ur_max u.ur_message))
    g.units;
  Buffer.contents buf

(* -------------------- routing validator -------------------- *)

type routing_check = {
  rc_wirelength : int;
  rc_vias : int;
}

type parsed_net = { pn_name : string; pn_paths : Vc_route.Grid.point list list }

let parse_routing_solution text =
  let lines = Vc_util.Tok.logical_lines ~comment:'#' text in
  let nets = ref [] in
  let current_name = ref None in
  let current_paths = ref [] and current_path = ref [] in
  let flush_path () =
    if !current_path <> [] then begin
      current_paths := List.rev !current_path :: !current_paths;
      current_path := []
    end
  in
  let flush_net () =
    match !current_name with
    | None -> ()
    | Some name ->
      flush_path ();
      nets := { pn_name = name; pn_paths = List.rev !current_paths } :: !nets;
      current_name := None;
      current_paths := []
  in
  let handle line =
    match Vc_util.Tok.split_words line with
    | [] -> ()
    | [ "net"; name ] ->
      flush_net ();
      current_name := Some name
    | [ "break" ] -> flush_path ()
    | [ "endnet" ] -> flush_net ()
    | [ l; x; y ] -> begin
      match !current_name with
      | None -> failwith "routing solution: coordinates outside a net block"
      | Some _ ->
        current_path :=
          {
            Vc_route.Grid.layer = Vc_util.Tok.parse_int ~context:"layer" l;
            x = Vc_util.Tok.parse_int ~context:"x" x;
            y = Vc_util.Tok.parse_int ~context:"y" y;
          }
          :: !current_path
    end
    | toks -> failwith ("routing solution: malformed line: " ^ String.concat " " toks)
  in
  List.iter handle lines;
  flush_net ();
  List.rev !nets

let validate_routing (problem : Vc_route.Router.problem) text =
  match parse_routing_solution text with
  | exception Failure msg -> Error msg
  | nets -> begin
    let g =
      Vc_route.Grid.create ~costs:problem.Vc_route.Router.cost_params
        ~width:problem.Vc_route.Router.grid_width
        ~height:problem.Vc_route.Router.grid_height ()
    in
    List.iter (Vc_route.Grid.add_obstacle g) problem.Vc_route.Router.obstacles;
    let specs = problem.Vc_route.Router.net_specs in
    let errors = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
    (* every spec net must appear exactly once *)
    List.iter
      (fun (spec : Vc_route.Router.net_spec) ->
        match
          List.filter (fun n -> n.pn_name = spec.Vc_route.Router.rn_name) nets
        with
        | [] -> err "net %s missing from solution" spec.Vc_route.Router.rn_name
        | [ _ ] -> ()
        | _ -> err "net %s appears more than once" spec.Vc_route.Router.rn_name)
      specs;
    List.iter
      (fun n ->
        if
          not
            (List.exists
               (fun (s : Vc_route.Router.net_spec) ->
                 s.Vc_route.Router.rn_name = n.pn_name)
               specs)
        then err "unknown net %s in solution" n.pn_name)
      nets;
    let wirelength = ref 0 and vias = ref 0 in
    (* claim cells per net; Grid.occupy rejects overlaps and obstacles *)
    List.iteri
      (fun id n ->
        List.iter
          (fun path ->
            if not (Vc_route.Maze.path_contiguous path) then
              err "net %s: path is not contiguous" n.pn_name;
            List.iter
              (fun pt ->
                if not (Vc_route.Grid.in_bounds g pt) then
                  err "net %s: point off grid" n.pn_name
                else if Vc_route.Grid.is_obstacle g pt then
                  err "net %s: path crosses an obstacle" n.pn_name
                else begin
                  match Vc_route.Grid.occupant g pt with
                  | Some other when other <> id ->
                    err "net %s: overlaps another net" n.pn_name
                  | Some _ | None -> Vc_route.Grid.occupy g id pt
                end)
              path;
            let rec steps = function
              | (a : Vc_route.Grid.point) :: (b :: _ as rest) ->
                if a.Vc_route.Grid.layer <> b.Vc_route.Grid.layer then incr vias
                else incr wirelength;
                steps rest
              | [ _ ] | [] -> ()
            in
            steps path)
          n.pn_paths)
      nets;
    (* connectivity: per net, all pins reachable through claimed cells *)
    List.iteri
      (fun id n ->
        match
          List.find_opt
            (fun (s : Vc_route.Router.net_spec) ->
              s.Vc_route.Router.rn_name = n.pn_name)
            specs
        with
        | None -> ()
        | Some spec ->
          let points = List.concat n.pn_paths in
          let points = List.sort_uniq compare points in
          let index = Hashtbl.create 64 in
          List.iteri (fun i pt -> Hashtbl.replace index pt i) points;
          let uf = Vc_util.Union_find.create (max 1 (List.length points)) in
          List.iter
            (fun (pt : Vc_route.Grid.point) ->
              let try_join (q : Vc_route.Grid.point) =
                match Hashtbl.find_opt index q with
                | Some j -> Vc_util.Union_find.union uf (Hashtbl.find index pt) j
                | None -> ()
              in
              try_join { pt with Vc_route.Grid.x = pt.Vc_route.Grid.x + 1 };
              try_join { pt with Vc_route.Grid.y = pt.Vc_route.Grid.y + 1 };
              try_join { pt with Vc_route.Grid.layer = 1 - pt.Vc_route.Grid.layer })
            points;
          let pin_index (x, y) =
            Hashtbl.find_opt index { Vc_route.Grid.layer = 0; x; y }
          in
          begin
            match List.map pin_index spec.Vc_route.Router.rn_pins with
            | [] -> ()
            | first :: rest ->
              let check_pin p =
                match (first, p) with
                | Some a, Some b ->
                  if not (Vc_util.Union_find.same uf a b) then
                    err "net %s: pins not connected" n.pn_name
                | None, _ | _, None ->
                  err "net %s: a pin is not covered by the route" n.pn_name
              in
              List.iter check_pin (first :: rest)
          end;
          ignore id)
      nets;
    match !errors with
    | [] -> Ok { rc_wirelength = !wirelength; rc_vias = !vias }
    | es -> Error (String.concat "; " (List.rev es))
  end

(* -------------------- placement validator -------------------- *)

let validate_placement net ~max_overlaps text =
  match Vc_place.Pnet.parse_placement net text with
  | exception Failure msg -> Error msg
  | p ->
    if not (Vc_place.Legalize.inside_core net p) then
      Error "placement: cells outside the core region"
    else begin
      let overlaps = Vc_place.Legalize.overlap_count net p in
      if overlaps > max_overlaps then
        Error (Printf.sprintf "placement: %d overlapping cell pairs" overlaps)
      else Ok (Vc_place.Pnet.hpwl net p)
    end
