let source = ref Unix.gettimeofday
let set f = source := f
let now () = !source ()
