let topic_phrases =
  [
    ("more verilog and hdl based design entry", 9.0);
    ("sequential logic and state machine synthesis", 8.0);
    ("more on timing closure and static timing", 7.0);
    ("physical design and floorplanning detail", 7.0);
    ("test and design for testability", 6.0);
    ("low power design techniques", 6.0);
    ("simulation and verification flows", 6.0);
    ("fpga targeted synthesis and mapping", 5.0);
    ("more placement and routing benchmarks", 5.0);
    ("clock tree synthesis and skew", 4.0);
    ("parasitic extraction and drc", 4.0);
    ("analog and mixed signal design", 3.0);
    ("bigger projects with industrial netlists", 3.0);
    ("systemverilog and uvm methodology", 3.0);
    ("great course thank you professor", 8.0);
    ("excellent lectures and fun projects", 5.0);
    ("more depth on bdd and sat algorithms", 4.0);
    ("logic optimization with don't cares", 3.0);
    ("advanced routing congestion and layers", 3.0);
    ("machine arithmetic and datapath synthesis", 2.0);
  ]

let generate_responses ?(seed = 11) n =
  let rng = Vc_util.Rng.create seed in
  List.init n (fun _ ->
      (* 1-3 phrases per respondent *)
      let phrases = 1 + Vc_util.Rng.int rng 3 in
      String.concat ". "
        (List.init phrases (fun _ ->
             Vc_util.Rng.choose_weighted rng topic_phrases)))

let stopwords =
  [
    "the"; "and"; "a"; "an"; "of"; "on"; "in"; "to"; "for"; "with"; "more";
    "is"; "are"; "was"; "i"; "we"; "you"; "it"; "this"; "that"; "based";
    "detail"; "s"; "t"; "don";
  ]

let word_frequencies responses =
  let counts = Hashtbl.create 128 in
  let add word =
    if String.length word > 1 && not (List.mem word stopwords) then
      Hashtbl.replace counts word
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts word))
  in
  let clean response =
    String.map
      (fun c ->
        if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c
        else if c >= 'A' && c <= 'Z' then Char.lowercase_ascii c
        else ' ')
      response
  in
  List.iter
    (fun r -> List.iter add (Vc_util.Tok.split_words (clean r)))
    responses;
  Hashtbl.fold (fun w k acc -> (w, k) :: acc) counts []
  |> List.sort (fun (w1, a) (w2, b) ->
         match compare b a with 0 -> compare w1 w2 | c -> c)

let render_fig11 ?(top = 25) freqs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Fig. 11: survey word cloud (top requested-topic words)\n";
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let top_list = take top freqs in
  let peak = match top_list with (_, k) :: _ -> k | [] -> 1 in
  List.iter
    (fun (w, k) ->
      let size = 1 + (k * 5 / max 1 peak) in
      let shout =
        if size >= 4 then String.uppercase_ascii w
        else if size >= 2 then String.capitalize_ascii w
        else w
      in
      Buffer.add_string buf (Printf.sprintf "  %-18s %4d %s\n" shout k (String.make (min 60 (k * 60 / max 1 peak)) '#')))
    top_list;
  Buffer.contents buf
