(** Combinational equivalence checking of networks - the verification step
    of the course flow, with both engines taught in week 2. *)

type engine = Bdd_engine | Sat_engine

type verdict =
  | Equivalent
  | Different of (string * bool) list * string
      (** Distinguishing input assignment and the first differing output. *)

val check : ?engine:engine -> Network.t -> Network.t -> verdict
(** Networks must share input and output names (order-insensitive).
    Default engine: BDDs.
    @raise Invalid_argument if the interfaces differ. *)

val equivalent : ?engine:engine -> Network.t -> Network.t -> bool

val output_bdds : Vc_bdd.Bdd.man -> Network.t -> (string * Vc_bdd.Bdd.t) list
(** Build one BDD per output by sweeping the network in topological order
    (shared manager; inputs by name). Exposed for reuse by graders and
    benches. *)
