(* axb: the linear-system portal tool. Usage: axb [system-file] *)

let () =
  let text =
    match Sys.argv with
    | [| _ |] -> In_channel.input_all stdin
    | [| _; path |] -> In_channel.with_open_text path In_channel.input_all
    | _ ->
      prerr_endline "usage: axb [system-file]";
      exit 2
  in
  print_endline (Vc_linalg.Axb.run text)
