module Cover = Vc_cube.Cover

type fault = {
  signal : string;
  stuck_at : bool;
}

let fault_to_string f =
  Printf.sprintf "%s/%d" f.signal (if f.stuck_at then 1 else 0)

let all_faults t =
  let signals = Network.inputs t @ List.sort compare (Network.node_names t) in
  List.concat_map
    (fun s -> [ { signal = s; stuck_at = false }; { signal = s; stuck_at = true } ])
    signals

let constant_cover v = if v then Cover.top 0 else Cover.empty 0

let inject t fault =
  let faulty = Network.copy t in
  if List.mem fault.signal (Network.inputs t) then begin
    (* inputs cannot be redefined: alias the stuck value through a fresh
       internal signal and rewire every user *)
    let alias = fault.signal ^ "__fault" in
    Network.add_node faulty ~name:alias ~fanins:[]
      ~func:(constant_cover fault.stuck_at);
    List.iter
      (fun user ->
        match Network.find_node faulty user with
        | None -> ()
        | Some node ->
          let fanins =
            List.map
              (fun f -> if f = fault.signal then alias else f)
              node.Network.fanins
          in
          Network.add_node faulty ~name:user ~fanins ~func:node.Network.func)
      (Network.fanouts faulty fault.signal);
    faulty
  end
  else begin
    (match Network.find_node faulty fault.signal with
    | Some _ -> ()
    | None -> invalid_arg ("Atpg.inject: unknown signal " ^ fault.signal));
    Network.add_node faulty ~name:fault.signal ~fanins:[]
      ~func:(constant_cover fault.stuck_at);
    faulty
  end

let test_for ?engine t fault =
  let faulty = inject t fault in
  match Equiv.check ?engine t faulty with
  | Equiv.Equivalent -> None
  | Equiv.Different (assignment, _) -> Some assignment

type report = {
  total : int;
  detected : int;
  redundant : int;
  vectors : (fault * (string * bool) list) list;
}

let generate_all ?engine t =
  let faults = all_faults t in
  let vectors = ref [] and redundant = ref 0 in
  List.iter
    (fun f ->
      match test_for ?engine t f with
      | Some v -> vectors := (f, v) :: !vectors
      | None -> incr redundant)
    faults;
  {
    total = List.length faults;
    detected = List.length !vectors;
    redundant = !redundant;
    vectors = List.rev !vectors;
  }

let coverage r =
  if r.total = 0 then 1.0 else float_of_int r.detected /. float_of_int r.total

let detects t fault vector =
  let env v = Option.value ~default:false (List.assoc_opt v vector) in
  let good = Network.simulate t env in
  let bad = Network.simulate (inject t fault) env in
  good <> bad

let compact t r =
  let detected_faults = List.map fst r.vectors in
  let covered = Hashtbl.create 64 in
  let kept = ref [] in
  List.iter
    (fun (_, vector) ->
      let newly =
        List.filter
          (fun f ->
            (not (Hashtbl.mem covered (fault_to_string f)))
            && detects t f vector)
          detected_faults
      in
      if newly <> [] then begin
        List.iter (fun f -> Hashtbl.replace covered (fault_to_string f) ()) newly;
        kept := vector :: !kept
      end)
    r.vectors;
  List.rev !kept
