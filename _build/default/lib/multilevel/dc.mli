(** Don't-care-based node simplification: the full-strength week-4 topic.

    For a node with fanins f1..fk, the satisfiability don't-cares are the
    fanin-value patterns that no primary-input assignment can produce
    (because the fi are correlated). Minimizing the node's cover against
    that DC set with Espresso can only shrink it, and cannot change the
    network's behaviour - unreachable patterns never occur.

    Patterns are enumerated through BDDs of the fanin cones, so nodes are
    processed only when [fanins <= max_fanins] (default 8) and the cone
    support is at most [max_support] (default 16) primary inputs. *)

val node_dc_cover :
  ?max_support:int -> Vc_network.Network.t -> string -> Vc_cube.Cover.t option
(** The SDC cover (over the node's fanin space) of one node, or [None]
    when the node is missing or the cone is too large. *)

val simplify :
  ?max_fanins:int -> ?max_support:int -> Vc_network.Network.t -> int
(** Espresso every eligible node against its SDC cover; returns literals
    saved. Behaviour-preserving (the test suite checks equivalence). *)
