bin/espresso.ml: Array In_channel String Sys Vc_two_level
