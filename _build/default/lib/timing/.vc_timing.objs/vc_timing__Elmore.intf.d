lib/timing/elmore.mli: Vc_route
