lib/linalg/sparse.mli: Dense
