lib/two_level/pla.ml: Array Buffer Bytes Hashtbl List Printf String Vc_cube Vc_util
