test/test_two_level.mli:
