lib/mooc/portal.mli:
