type params = {
  seed : int;
  initial_temp : float;
  cooling : float;
  moves_per_cell : int;
  min_temp : float;
}

let default_params =
  {
    seed = 1;
    initial_temp = 20.0;
    cooling = 0.92;
    moves_per_cell = 12;
    min_temp = 0.002;
  }

type stats = {
  stages : int;
  attempted : int;
  accepted : int;
  initial_hpwl : float;
  final_hpwl : float;
}

(* Process-wide cumulative move counters across every [run], for the
   Telemetry probe (per-run numbers stay in the returned [stats]). *)
let g_runs = ref 0
let g_stages = ref 0
let g_attempted = ref 0
let g_accepted = ref 0

(* Slot grid state: slot -> cell (-1 empty), cell -> slot, plus incremental
   HPWL bookkeeping through per-cell net membership. *)
type state = {
  t : Pnet.t;
  nx : int;
  ny : int;
  slot_cell : int array;
  cell_slot : int array;
  p : Pnet.placement;
  nets_of_cell : int list array;
}

let slot_center st slot =
  let ix = slot mod st.nx and iy = slot / st.nx in
  let sx = st.t.Pnet.width /. float_of_int st.nx in
  let sy = st.t.Pnet.height /. float_of_int st.ny in
  ((float_of_int ix +. 0.5) *. sx, (float_of_int iy +. 0.5) *. sy)

let build_state ~seed t =
  let n = t.Pnet.num_cells in
  let nx = max 1 (int_of_float (ceil (sqrt (float_of_int n)))) in
  let ny = max 1 ((n + nx - 1) / nx) in
  let slots = nx * ny in
  let slot_cell = Array.make slots (-1) in
  let cell_slot = Array.make n 0 in
  let order = Array.init slots (fun i -> i) in
  let rng = Vc_util.Rng.create seed in
  Vc_util.Rng.shuffle rng order;
  for c = 0 to n - 1 do
    slot_cell.(order.(c)) <- c;
    cell_slot.(c) <- order.(c)
  done;
  let p =
    { Pnet.xs = Array.make n 0.0; Pnet.ys = Array.make n 0.0 }
  in
  let nets_of_cell = Array.make n [] in
  Array.iteri
    (fun ni net ->
      List.iter
        (fun pin ->
          match pin with
          | Pnet.Cell c -> nets_of_cell.(c) <- ni :: nets_of_cell.(c)
          | Pnet.Pad _ -> ())
        net.Pnet.pins)
    t.Pnet.nets;
  let st = { t; nx; ny; slot_cell; cell_slot; p; nets_of_cell } in
  for c = 0 to n - 1 do
    let x, y = slot_center st cell_slot.(c) in
    p.Pnet.xs.(c) <- x;
    p.Pnet.ys.(c) <- y
  done;
  (st, rng)

let affected_cost st cells =
  let nets =
    List.sort_uniq compare
      (List.concat_map (fun c -> st.nets_of_cell.(c)) cells)
  in
  List.fold_left
    (fun acc ni -> acc +. Pnet.hpwl_net st.t st.p st.t.Pnet.nets.(ni))
    0.0 nets

let apply_move st cell slot =
  let old_slot = st.cell_slot.(cell) in
  let other = st.slot_cell.(slot) in
  st.slot_cell.(old_slot) <- other;
  st.slot_cell.(slot) <- cell;
  st.cell_slot.(cell) <- slot;
  let x, y = slot_center st slot in
  st.p.Pnet.xs.(cell) <- x;
  st.p.Pnet.ys.(cell) <- y;
  if other >= 0 then begin
    st.cell_slot.(other) <- old_slot;
    let ox, oy = slot_center st old_slot in
    st.p.Pnet.xs.(other) <- ox;
    st.p.Pnet.ys.(other) <- oy
  end

let run ~accept params t =
  let st, rng = build_state ~seed:params.seed t in
  let n = t.Pnet.num_cells in
  let slots = st.nx * st.ny in
  let initial_hpwl = Pnet.hpwl t st.p in
  let attempted = ref 0 and accepted = ref 0 and stages = ref 0 in
  (* scale the starting temperature by the average net span *)
  let temp =
    ref
      (params.initial_temp *. initial_hpwl
      /. float_of_int (max 1 (Array.length t.Pnet.nets)))
  in
  let stop_temp = params.min_temp *. !temp in
  let continue_ = ref (n > 1) in
  while !continue_ do
    incr stages;
    for _ = 1 to params.moves_per_cell * n do
      incr attempted;
      let cell = Vc_util.Rng.int rng n in
      let slot = Vc_util.Rng.int rng slots in
      if slot <> st.cell_slot.(cell) then begin
        let old_slot = st.cell_slot.(cell) in
        let other = st.slot_cell.(slot) in
        let involved = if other >= 0 then [ cell; other ] else [ cell ] in
        let before = affected_cost st involved in
        apply_move st cell slot;
        let after = affected_cost st involved in
        let delta = after -. before in
        if accept rng delta !temp then incr accepted
          (* revert: moving [cell] back to its old slot also swaps [other]
             (if any) back into [slot] *)
        else apply_move st cell old_slot
      end
    done;
    temp := !temp *. params.cooling;
    if !temp < stop_temp || !stages > 500 then continue_ := false
  done;
  incr g_runs;
  g_stages := !g_stages + !stages;
  g_attempted := !g_attempted + !attempted;
  g_accepted := !g_accepted + !accepted;
  let stats =
    {
      stages = !stages;
      attempted = !attempted;
      accepted = !accepted;
      initial_hpwl;
      final_hpwl = Pnet.hpwl t st.p;
    }
  in
  (st.p, stats)

let metropolis rng delta temp =
  delta <= 0.0
  || (temp > 0.0 && Vc_util.Rng.float rng 1.0 < exp (-.delta /. temp))

let place ?(params = default_params) t = run ~accept:metropolis params t

let greedy ?(seed = 1) t =
  let params = { default_params with seed } in
  run ~accept:(fun _ delta _ -> delta <= 0.0) params t

let stats () =
  [
    ("runs", !g_runs);
    ("stages", !g_stages);
    ("moves_attempted", !g_attempted);
    ("moves_accepted", !g_accepted);
  ]

let () = Vc_util.Telemetry.register_probe "place.annealing" stats
