module Expr = Vc_cube.Expr
type gate_table = {
  d00 : bool;
  d01 : bool;
  d10 : bool;
  d11 : bool;
}

let bit b = if b then '1' else '0'

let raw_table t =
  Printf.sprintf "TABLE:%c%c%c%c" (bit t.d00) (bit t.d01) (bit t.d10)
    (bit t.d11)

let gate_name ({ d00; d01; d10; d11 } as t) =
  match (d00, d01, d10, d11) with
  | false, false, false, true -> "AND"
  | true, true, true, false -> "NAND"
  | false, true, true, true -> "OR"
  | true, false, false, false -> "NOR"
  | false, true, true, false -> "XOR"
  | true, false, false, true -> "XNOR"
  | false, false, true, true -> "BUF(a)"
  | true, true, false, false -> "NOT(a)"
  | false, true, false, true -> "BUF(b)"
  | true, false, true, false -> "NOT(b)"
  | false, false, false, false -> "ZERO"
  | true, true, true, true -> "ONE"
  | false, false, true, false
  | false, true, false, false
  | true, false, true, true
  | true, true, false, true -> raw_table t

let repair_2input ~inputs ~spec ~build =
  let m = Bdd.create () in
  (* order: primary inputs first, then the four d unknowns; quantifying the
     inputs (top of the order) leaves a function of d only *)
  List.iter (fun v -> ignore (Bdd.var m v)) inputs;
  let d00 = Bdd.var m "_d00" in
  let d01 = Bdd.var m "_d01" in
  let d10 = Bdd.var m "_d10" in
  let d11 = Bdd.var m "_d11" in
  let hole u v =
    (* H(u, v) = mux of the four table entries selected by (u, v) *)
    Bdd.mk_ite m u (Bdd.mk_ite m v d11 d10) (Bdd.mk_ite m v d01 d00)
  in
  let patched = build m ~hole in
  let spec_bdd = Bdd.of_expr m spec in
  let agrees = Bdd.mk_iff m patched spec_bdd in
  let input_indices =
    List.map
      (fun v ->
        match Bdd.var_index m v with
        | Some i -> i
        | None ->
          (* spec/network may not mention an input; it was still created *)
          assert false)
      inputs
  in
  let repair = Bdd.forall m input_indices agrees in
  (* enumerate all 16 tables rather than decoding partial assignments *)
  let tables = ref [] in
  for code = 15 downto 0 do
    let t =
      {
        d00 = code land 8 <> 0;
        d01 = code land 4 <> 0;
        d10 = code land 2 <> 0;
        d11 = code land 1 <> 0;
      }
    in
    let env i =
      let name = Bdd.var_name m i in
      match name with
      | "_d00" -> t.d00
      | "_d01" -> t.d01
      | "_d10" -> t.d10
      | "_d11" -> t.d11
      | _ -> false
    in
    if Bdd.eval m repair env then tables := t :: !tables
  done;
  !tables

let repairable ~inputs ~spec ~build =
  repair_2input ~inputs ~spec ~build <> []
