(** Channel routing by the classic left-edge algorithm: nets enter a
    horizontal channel through fixed top/bottom pin columns; each net gets
    one horizontal trunk on a track plus vertical branches to its pins.
    Covered in the traditional course's routing unit (the MOOC kept maze
    routing only - this module is the omitted-topic extension).

    Constraints honoured:
    - horizontal: two nets sharing a track must not overlap in column span;
    - vertical: in any column, the net pinned on top must be on a track
      above the net pinned on bottom (acyclic vertical-constraint graph
      required; cyclic problems are rejected - doglegs are future work). *)

type problem = {
  top : int array;  (** Net id per column, 0 = no pin. *)
  bottom : int array;  (** Same length as [top]. *)
}

type assignment = {
  tracks : (int * int) list;  (** (net id, track index), track 0 topmost. *)
  num_tracks : int;
}

val parse : string -> problem
(** Two whitespace-separated integer rows:
    {v
    top    1 0 2 0 1
    bottom 0 2 0 1 0
    v} *)

val to_string : problem -> string

val density : problem -> int
(** Channel density: the maximum number of nets crossing any column - a
    lower bound on the track count. *)

val route : problem -> (assignment, string) result
(** Left-edge with vertical constraints; [Error] explains a cyclic VCG or
    malformed input. The result always uses at most (and usually exactly)
    a small constant above {!density} tracks and satisfies both constraint
    families (checked by {!check}). *)

val check : problem -> assignment -> (unit, string) result
(** Independent validity check used by the tests. *)

val render : problem -> assignment -> string
(** ASCII channel picture: trunks, branches and pins. *)
