lib/mooc/flow.ml: Array Float Hashtbl List Option Printf String Vc_multilevel Vc_network Vc_place Vc_route Vc_techmap Vc_timing
