type t = {
  n : int;
  row_start : int array; (* length n+1 *)
  col : int array;
  value : float array;
}

type builder = {
  bn : int;
  entries : (int * int, float ref) Hashtbl.t;
}

let builder n = { bn = n; entries = Hashtbl.create (4 * n) }

let add b i j v =
  if i < 0 || i >= b.bn || j < 0 || j >= b.bn then
    invalid_arg "Sparse.add: index out of range";
  match Hashtbl.find_opt b.entries (i, j) with
  | Some r -> r := !r +. v
  | None -> Hashtbl.add b.entries (i, j) (ref v)

let finalize b =
  let per_row = Array.make b.bn [] in
  Hashtbl.iter
    (fun (i, j) v -> if !v <> 0.0 then per_row.(i) <- (j, !v) :: per_row.(i))
    b.entries;
  let row_start = Array.make (b.bn + 1) 0 in
  let total = ref 0 in
  Array.iteri
    (fun i entries ->
      row_start.(i) <- !total;
      total := !total + List.length entries)
    per_row;
  row_start.(b.bn) <- !total;
  let col = Array.make (max 1 !total) 0 in
  let value = Array.make (max 1 !total) 0.0 in
  Array.iteri
    (fun i entries ->
      let sorted = List.sort compare entries in
      List.iteri
        (fun k (j, v) ->
          col.(row_start.(i) + k) <- j;
          value.(row_start.(i) + k) <- v)
        sorted)
    per_row;
  { n = b.bn; row_start; col; value }

let of_triplets n triplets =
  let b = builder n in
  List.iter (fun (i, j, v) -> add b i j v) triplets;
  finalize b

let dim m = m.n

let nnz m = m.row_start.(m.n)

let mat_vec m x =
  if Array.length x <> m.n then invalid_arg "Sparse.mat_vec: shape mismatch";
  Array.init m.n (fun i ->
      let acc = ref 0.0 in
      for k = m.row_start.(i) to m.row_start.(i + 1) - 1 do
        acc := !acc +. (m.value.(k) *. x.(m.col.(k)))
      done;
      !acc)

let get m i j =
  let rec scan k =
    if k >= m.row_start.(i + 1) then 0.0
    else if m.col.(k) = j then m.value.(k)
    else scan (k + 1)
  in
  scan m.row_start.(i)

let to_dense m =
  let d = Dense.create ~rows:m.n ~cols:m.n in
  for i = 0 to m.n - 1 do
    for k = m.row_start.(i) to m.row_start.(i + 1) - 1 do
      Dense.set d i m.col.(k) m.value.(k)
    done
  done;
  d

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. b.(i))) a;
  !acc

let norm x = sqrt (dot x x)

let conjugate_gradient ?(tol = 1e-10) ?max_iters m b =
  let n = m.n in
  let max_iters = Option.value ~default:(4 * n) max_iters in
  let x = Array.make n 0.0 in
  let r = Array.copy b in
  let p = Array.copy b in
  let b_norm = max (norm b) 1e-30 in
  let rs_old = ref (dot r r) in
  let iters = ref 0 in
  let continue_ = ref (sqrt !rs_old /. b_norm > tol) in
  while !continue_ && !iters < max_iters do
    let ap = mat_vec m p in
    let alpha = !rs_old /. dot p ap in
    for i = 0 to n - 1 do
      x.(i) <- x.(i) +. (alpha *. p.(i));
      r.(i) <- r.(i) -. (alpha *. ap.(i))
    done;
    let rs_new = dot r r in
    if sqrt rs_new /. b_norm <= tol then continue_ := false
    else begin
      let beta = rs_new /. !rs_old in
      for i = 0 to n - 1 do
        p.(i) <- r.(i) +. (beta *. p.(i))
      done
    end;
    rs_old := rs_new;
    incr iters
  done;
  (x, !iters)

let gauss_seidel ?(tol = 1e-10) ?max_iters m b =
  let n = m.n in
  let max_iters = Option.value ~default:(100 * n) max_iters in
  let x = Array.make n 0.0 in
  let b_norm = max (norm b) 1e-30 in
  let iters = ref 0 in
  let converged = ref false in
  while (not !converged) && !iters < max_iters do
    for i = 0 to n - 1 do
      let sigma = ref 0.0 and diag = ref 0.0 in
      for k = m.row_start.(i) to m.row_start.(i + 1) - 1 do
        let j = m.col.(k) in
        if j = i then diag := m.value.(k)
        else sigma := !sigma +. (m.value.(k) *. x.(j))
      done;
      if !diag = 0.0 then failwith "Sparse.gauss_seidel: zero diagonal";
      x.(i) <- (b.(i) -. !sigma) /. !diag
    done;
    incr iters;
    let res = mat_vec m x in
    let err = ref 0.0 in
    Array.iteri (fun i v -> err := !err +. (((v -. b.(i)) ** 2.0))) res;
    if sqrt !err /. b_norm <= tol then converged := true
  done;
  (x, !iters)
