open Helpers
module T = Vc_util.Telemetry
module Portal = Vc_mooc.Portal

(* Probes register at module-initialization time, which happens when the
   kernel's compilation unit is linked; reference each one so this test
   binary links all four. *)
let () =
  ignore Vc_sat.Solver.stats;
  ignore Vc_bdd.Bdd.stats;
  ignore Vc_route.Maze.stats;
  ignore Vc_place.Annealing.stats

(* The renderer output is validated against the shared strict parser
   (Vc_util.Json), which is itself exercised in test_util.ml. *)
module Json = Vc_util.Json
module Journal = Vc_util.Journal
module Regress = Vc_util.Regress

let parse_json = Json.parse
let obj_field = Json.member

(* Install a clock returning the given readings in order (then repeating
   the last one), run [f], and restore the wall clock. *)
let with_fake_clock readings f =
  let remaining = ref readings and last = ref 0.0 in
  T.set_clock (fun () ->
      match !remaining with
      | [] -> !last
      | t :: rest ->
        remaining := rest;
        last := t;
        t);
  Fun.protect ~finally:(fun () -> T.set_clock Unix.gettimeofday) f

(* ------------------------------------------------------------------ *)
(* telemetry core                                                      *)
(* ------------------------------------------------------------------ *)

let telemetry_tests =
  [
    tc "counters create, add and read back" (fun () ->
        T.reset ();
        check Alcotest.int "absent is 0" 0 (T.counter "t.c");
        T.incr "t.c";
        T.incr ~by:4 "t.c";
        check Alcotest.int "1 + 4" 5 (T.counter "t.c");
        check Alcotest.bool "listed" true (List.mem_assoc "t.c" (T.counters ())));
    tc "timers summarize samples" (fun () ->
        T.reset ();
        check Alcotest.bool "absent" true (T.timer "t.t" = None);
        T.observe "t.t" 0.010;
        T.observe "t.t" 0.020;
        T.observe "t.t" 0.030;
        match T.timer "t.t" with
        | None -> Alcotest.fail "timer vanished"
        | Some s ->
          check Alcotest.int "count" 3 s.T.count;
          check (Alcotest.float 1e-9) "total" 0.060 s.T.total_s;
          check (Alcotest.float 1e-9) "p50" 0.020 s.T.p50_s;
          check (Alcotest.float 1e-9) "max" 0.030 s.T.max_s);
    tc "time records one sample per call and returns the value" (fun () ->
        T.reset ();
        let v = T.time "t.f" (fun () -> 41 + 1) in
        check Alcotest.int "value" 42 v;
        ignore (T.time "t.f" (fun () -> 0));
        match T.timer "t.f" with
        | Some s -> check Alcotest.int "two samples" 2 s.T.count
        | None -> Alcotest.fail "no samples");
    tc "time records the sample even when f raises" (fun () ->
        T.reset ();
        (try T.time "t.boom" (fun () -> failwith "boom") with Failure _ -> ());
        match T.timer "t.boom" with
        | Some s -> check Alcotest.int "one sample" 1 s.T.count
        | None -> Alcotest.fail "no sample");
    tc "spans nest into a tree" (fun () ->
        T.reset ();
        let v =
          T.with_span "outer" (fun () ->
              ignore (T.with_span "inner1" (fun () -> 1));
              ignore (T.with_span "inner2" (fun () -> 2));
              7)
        in
        check Alcotest.int "value" 7 v;
        match T.spans () with
        | [ s ] ->
          check Alcotest.string "root" "outer" s.T.span_name;
          check
            Alcotest.(list string)
            "children in order" [ "inner1"; "inner2" ]
            (List.map (fun c -> c.T.span_name) s.T.children)
        | l -> Alcotest.fail (Printf.sprintf "%d roots" (List.length l)));
    tc "a raising span is recorded with an error attribute" (fun () ->
        T.reset ();
        (try T.with_span "bad" (fun () -> failwith "oops") with Failure _ -> ());
        match T.spans () with
        | [ s ] ->
          check Alcotest.bool "error attr" true (List.mem_assoc "error" s.T.attrs)
        | _ -> Alcotest.fail "expected exactly one root span");
    tc "probes are pulled at render time" (fun () ->
        let v = ref 1 in
        T.register_probe "test.probe" (fun () -> [ ("v", !v) ]);
        let read () = List.assoc "test.probe" (T.probes ()) in
        check Alcotest.(list (pair string int)) "initial" [ ("v", 1) ] (read ());
        v := 5;
        check Alcotest.(list (pair string int)) "updated" [ ("v", 5) ] (read ()));
    tc "kernel probes are registered" (fun () ->
        let names = List.map fst (T.probes ()) in
        List.iter
          (fun n -> check Alcotest.bool n true (List.mem n names))
          [ "sat.solver"; "bdd"; "route.maze"; "place.annealing" ]);
    tc "report mentions counters, timers and probes" (fun () ->
        T.reset ();
        T.incr "report.counter";
        T.observe "report.timer" 0.001;
        let r = T.report () in
        let contains needle =
          let nl = String.length needle and hl = String.length r in
          let rec go i = i + nl <= hl && (String.sub r i nl = needle || go (i + 1)) in
          go 0
        in
        List.iter
          (fun needle -> check Alcotest.bool needle true (contains needle))
          [ "report.counter"; "report.timer"; "sat.solver" ]);
    tc "reset clears counters, timers and spans but keeps probes" (fun () ->
        T.incr "gone";
        T.observe "gone.t" 1.0;
        ignore (T.with_span "gone.s" (fun () -> ()));
        T.reset ();
        check Alcotest.int "counter" 0 (T.counter "gone");
        check Alcotest.bool "timer" true (T.timer "gone.t" = None);
        check Alcotest.int "spans" 0 (List.length (T.spans ()));
        check Alcotest.bool "probes kept" true (T.probes () <> []));
  ]

(* ------------------------------------------------------------------ *)
(* JSON renderers                                                      *)
(* ------------------------------------------------------------------ *)

let json_tests =
  [
    tc "to_json parses and carries the counters" (fun () ->
        T.reset ();
        T.incr ~by:3 "j.count";
        T.observe "j.timer" 0.002;
        let j = parse_json (T.to_json ()) in
        (match obj_field "counters" j with
        | Some (Json.Obj cs) ->
          check Alcotest.bool "counter present" true
            (match List.assoc_opt "j.count" cs with
            | Some (Json.Num 3.0) -> true
            | _ -> false)
        | _ -> Alcotest.fail "no counters object");
        match obj_field "timers" j with
        | Some (Json.Obj ts) ->
          check Alcotest.bool "timer has count" true
            (match List.assoc_opt "j.timer" ts with
            | Some t -> obj_field "count" t = Some (Json.Num 1.0)
            | None -> false)
        | _ -> Alcotest.fail "no timers object");
    tc "spans_to_json parses with nesting and attrs" (fun () ->
        T.reset ();
        ignore
          (T.with_span ~attrs:[ ("k", "v\"quoted\"") ] "root" (fun () ->
               T.with_span "child" (fun () -> ())));
        let j = parse_json (T.spans_to_json ()) in
        match obj_field "spans" j with
        | Some (Json.Arr [ root ]) ->
          check Alcotest.bool "name" true
            (obj_field "name" root = Some (Json.Str "root"));
          (match obj_field "attrs" root with
          | Some (Json.Obj [ ("k", Json.Str s) ]) ->
            check Alcotest.string "escaped attr round-trips" "v\"quoted\"" s
          | _ -> Alcotest.fail "attrs");
          (match obj_field "children" root with
          | Some (Json.Arr [ child ]) ->
            check Alcotest.bool "child name" true
              (obj_field "name" child = Some (Json.Str "child"))
          | _ -> Alcotest.fail "children")
        | _ -> Alcotest.fail "expected one root span");
    tc "cli_parse strips the flags and leaves the rest" (fun () ->
        let o =
          T.cli_parse
            [|
              "prog"; "--stats"; "input.txt"; "--trace"; "t.json";
              "--journal"; "j.jsonl"; "--metrics-port"; "9100"; "-x";
            |]
        in
        check
          Alcotest.(array string)
          "filtered"
          [| "prog"; "input.txt"; "-x" |]
          o.T.cli_argv;
        check Alcotest.bool "stats seen" true o.T.cli_stats;
        check Alcotest.(option string) "trace file" (Some "t.json") o.T.cli_trace;
        check
          Alcotest.(option string)
          "journal file" (Some "j.jsonl") o.T.cli_journal;
        check Alcotest.(option int) "metrics port" (Some 9100)
          o.T.cli_metrics_port);
    tc "cli_parse without flags requests nothing" (fun () ->
        let o = T.cli_parse [| "prog"; "input.txt" |] in
        check
          Alcotest.(array string)
          "untouched" [| "prog"; "input.txt" |] o.T.cli_argv;
        check Alcotest.bool "no stats" false o.T.cli_stats;
        check Alcotest.(option string) "no trace" None o.T.cli_trace;
        check Alcotest.(option string) "no journal" None o.T.cli_journal;
        check Alcotest.(option int) "no metrics port" None o.T.cli_metrics_port);
  ]

(* ------------------------------------------------------------------ *)
(* clock clamping (the wall clock is not monotonic)                    *)
(* ------------------------------------------------------------------ *)

let clock_tests =
  [
    tc "a normal forward clock measures the difference" (fun () ->
        with_fake_clock [ 10.0; 10.5 ] (fun () ->
            T.reset ();
            ignore (T.time "clk.fwd" (fun () -> ()));
            match T.timer "clk.fwd" with
            | Some s -> check (Alcotest.float 1e-9) "0.5s" 0.5 s.T.total_s
            | None -> Alcotest.fail "no sample"));
    tc "a backwards clock clamps timer samples to zero" (fun () ->
        with_fake_clock [ 100.0; 50.0 ] (fun () ->
            T.reset ();
            ignore (T.time "clk.back" (fun () -> ()));
            match T.timer "clk.back" with
            | Some s ->
              check (Alcotest.float 0.0) "clamped" 0.0 s.T.total_s;
              check Alcotest.bool "non-negative" true (s.T.max_s >= 0.0)
            | None -> Alcotest.fail "no sample"));
    tc "a backwards clock clamps even when the body raises" (fun () ->
        with_fake_clock [ 100.0; 50.0 ] (fun () ->
            T.reset ();
            (try T.time "clk.raise" (fun () -> failwith "boom")
             with Failure _ -> ());
            match T.timer "clk.raise" with
            | Some s -> check (Alcotest.float 0.0) "clamped" 0.0 s.T.total_s
            | None -> Alcotest.fail "no sample"));
    tc "a backwards clock clamps span durations to zero" (fun () ->
        with_fake_clock [ 100.0; 50.0 ] (fun () ->
            T.reset ();
            ignore (T.with_span "clk.span" (fun () -> ()));
            match T.spans () with
            | [ s ] ->
              check Alcotest.bool "duration non-negative" true
                (s.T.duration_s >= 0.0);
              check (Alcotest.float 0.0) "clamped" 0.0 s.T.duration_s
            | l -> Alcotest.fail (Printf.sprintf "%d spans" (List.length l))));
    tc "journal timestamps come from the same injectable clock" (fun () ->
        with_fake_clock [ 42.0 ] (fun () ->
            Journal.clear ();
            Journal.emit ~component:"test" "tick";
            match Journal.events () with
            | [ e ] -> check (Alcotest.float 0.0) "ts" 42.0 e.Journal.ev_ts
            | l -> Alcotest.fail (Printf.sprintf "%d events" (List.length l))));
  ]

(* ------------------------------------------------------------------ *)
(* journal core: ring buffer, sinks, JSONL                             *)
(* ------------------------------------------------------------------ *)

let journal_tests =
  [
    tc "emit appends in order with monotone sequence numbers" (fun () ->
        Journal.clear ();
        Journal.emit ~component:"a" "first";
        Journal.emit ~severity:Journal.Warn
          ~attrs:[ ("k", "v") ]
          ~component:"b" "second";
        (match Journal.events () with
        | [ e1; e2 ] ->
          check Alcotest.bool "seq increases" true
            (e2.Journal.ev_seq > e1.Journal.ev_seq);
          check Alcotest.string "component" "b" e2.Journal.ev_component;
          check Alcotest.string "name" "second" e2.Journal.ev_name;
          check
            Alcotest.(list (pair string string))
            "attrs" [ ("k", "v") ] e2.Journal.ev_attrs;
          check Alcotest.string "severity" "WARN"
            (Journal.severity_to_string e2.Journal.ev_severity)
        | l -> Alcotest.fail (Printf.sprintf "%d events" (List.length l)));
        check Alcotest.int "count" 2 (Journal.event_count ()));
    tc "the ring keeps only the newest events" (fun () ->
        Journal.clear ();
        let saved = Journal.ring_capacity () in
        Journal.set_ring_capacity 4;
        for i = 1 to 10 do
          Journal.emit ~component:"ring" (Printf.sprintf "e%d" i)
        done;
        let names = List.map (fun e -> e.Journal.ev_name) (Journal.events ()) in
        check
          Alcotest.(list string)
          "last four, oldest first"
          [ "e7"; "e8"; "e9"; "e10" ]
          names;
        check Alcotest.int "total count unaffected" 10 (Journal.event_count ());
        Journal.set_ring_capacity saved);
    tc "set_ring_capacity rejects negatives" (fun () ->
        check Alcotest.bool "raises" true
          (match Journal.set_ring_capacity (-1) with
          | () -> false
          | exception Invalid_argument _ -> true));
    tc "clear empties the ring and resets the count" (fun () ->
        Journal.emit ~component:"x" "pre";
        Journal.clear ();
        check Alcotest.int "no events" 0 (List.length (Journal.events ()));
        check Alcotest.int "count reset" 0 (Journal.event_count ()));
    tc "event_to_json round-trips through the parser" (fun () ->
        Journal.clear ();
        Journal.emit ~severity:Journal.Error
          ~attrs:[ ("why", "quote \" and newline \n") ]
          ~component:"portal" "submission";
        let e = List.hd (Journal.events ()) in
        let j = parse_json (Journal.event_to_json e) in
        check Alcotest.bool "seq" true
          (obj_field "seq" j = Some (Json.Num (float_of_int e.Journal.ev_seq)));
        check Alcotest.bool "severity" true
          (obj_field "severity" j = Some (Json.Str "ERROR"));
        check Alcotest.bool "component" true
          (obj_field "component" j = Some (Json.Str "portal"));
        check Alcotest.bool "event" true
          (obj_field "event" j = Some (Json.Str "submission"));
        match obj_field "attrs" j with
        | Some (Json.Obj [ ("why", Json.Str s) ]) ->
          check Alcotest.string "escaped attr round-trips"
            "quote \" and newline \n" s
        | _ -> Alcotest.fail "attrs");
    tc "to_jsonl emits one parseable line per event" (fun () ->
        Journal.clear ();
        Journal.emit ~component:"a" "one";
        Journal.emit ~component:"a" "two";
        let lines =
          String.split_on_char '\n' (Journal.to_jsonl ())
          |> List.filter (fun l -> l <> "")
        in
        check Alcotest.int "two lines" 2 (List.length lines);
        List.iter (fun l -> ignore (parse_json l)) lines);
    tc "sinks see every event and can be removed" (fun () ->
        Journal.clear ();
        let seen = ref [] in
        Journal.add_sink "test" (fun e -> seen := e.Journal.ev_name :: !seen);
        Journal.emit ~component:"s" "visible";
        Journal.remove_sink "test";
        Journal.emit ~component:"s" "invisible";
        check Alcotest.(list string) "one delivery" [ "visible" ] !seen);
    tc "a raising sink is dropped instead of breaking emit" (fun () ->
        Journal.clear ();
        Journal.add_sink "bad" (fun _ -> failwith "disk full");
        Journal.emit ~component:"s" "first";
        (* the sink raised once and was removed; emit keeps working *)
        Journal.emit ~component:"s" "second";
        check Alcotest.int "both recorded" 2 (Journal.event_count ()));
    tc "open_jsonl streams events to the file as JSON lines" (fun () ->
        Journal.clear ();
        let file = Filename.temp_file "journal" ".jsonl" in
        Journal.open_jsonl file;
        Journal.emit ~component:"f" ~attrs:[ ("n", "1") ] "flushed";
        Journal.remove_sink ("jsonl:" ^ file);
        let text = In_channel.with_open_text file In_channel.input_all in
        Sys.remove file;
        let lines =
          String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
        in
        check Alcotest.int "one line" 1 (List.length lines);
        let j = parse_json (List.hd lines) in
        check Alcotest.bool "event name" true
          (obj_field "event" j = Some (Json.Str "flushed")));
    tc "dump_flight_recorder formats the trailing window" (fun () ->
        Journal.clear ();
        for i = 1 to 40 do
          Journal.emit ~component:"loop" (Printf.sprintf "it%d" i)
        done;
        let captured = Buffer.create 256 in
        Journal.set_dump_printer (Buffer.add_string captured);
        Fun.protect
          ~finally:(fun () -> Journal.set_dump_printer prerr_string)
          (fun () -> Journal.dump_flight_recorder ~limit:5 ~reason:"unit test" ());
        let text = Buffer.contents captured in
        let contains needle =
          let nl = String.length needle and hl = String.length text in
          let rec go i =
            i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool "reason present" true (contains "unit test");
        check Alcotest.bool "newest event present" true (contains "it40");
        check Alcotest.bool "window start present" true (contains "it36");
        check Alcotest.bool "older events excluded" false (contains "it35"));
  ]

(* ------------------------------------------------------------------ *)
(* regression gating (bench compare)                                   *)
(* ------------------------------------------------------------------ *)

let telemetry_dump ~mean ~hits =
  Printf.sprintf
    {|{"counters":{"portal.kbdd.cache_hits":%d,"portal.kbdd.submits":10},
       "timers":{"portal.kbdd.latency":{"count":10,"total_s":%f,"mean_s":%f,
                 "p50_s":%f,"p90_s":%f,"max_s":%f}},
       "probes":{},"spans":0}|}
    hits (10.0 *. mean) mean mean mean mean

let qor_dump ~latency ~wirelength =
  Printf.sprintf
    {|{"stages":[{"stage":"routing","latency_s":%f,
       "metrics":{"wirelength":%f,"nets_routed":4.0}}],"total_latency_s":%f}|}
    latency wirelength latency

let regress_tests =
  [
    tc "identical telemetry dumps pass the gate" (fun () ->
        let j = parse_json (telemetry_dump ~mean:0.010 ~hits:9) in
        let v = Regress.compare_json ~baseline:j ~current:j () in
        check Alcotest.(list string) "no regressions" [] v.Regress.regressions;
        check Alcotest.bool "compared something" true (v.Regress.compared > 0));
    tc "a 2x latency regression trips the gate" (fun () ->
        let base = parse_json (telemetry_dump ~mean:0.010 ~hits:9) in
        let cur = parse_json (telemetry_dump ~mean:0.020 ~hits:9) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        check Alcotest.bool "regression flagged" true
          (v.Regress.regressions <> []));
    tc "latency deltas under the noise floor are ignored" (fun () ->
        (* 2x relative but only 10us absolute: below the 0.1ms floor *)
        let base = parse_json (telemetry_dump ~mean:0.00001 ~hits:9) in
        let cur = parse_json (telemetry_dump ~mean:0.00002 ~hits:9) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        check Alcotest.(list string) "no regressions" [] v.Regress.regressions);
    tc "fewer cache hits is a QoR regression" (fun () ->
        let base = parse_json (telemetry_dump ~mean:0.010 ~hits:9) in
        let cur = parse_json (telemetry_dump ~mean:0.010 ~hits:4) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        check Alcotest.bool "regression flagged" true
          (v.Regress.regressions <> []));
    tc "flow QoR reports gate on per-stage metrics" (fun () ->
        let base = parse_json (qor_dump ~latency:0.010 ~wirelength:17.0) in
        let same = Regress.compare_json ~baseline:base ~current:base () in
        check Alcotest.(list string) "identical passes" []
          same.Regress.regressions;
        let worse = parse_json (qor_dump ~latency:0.010 ~wirelength:34.0) in
        let v = Regress.compare_json ~baseline:base ~current:worse () in
        check Alcotest.bool "wirelength regression flagged" true
          (v.Regress.regressions <> []);
        let better = parse_json (qor_dump ~latency:0.010 ~wirelength:10.0) in
        let v2 = Regress.compare_json ~baseline:base ~current:better () in
        check Alcotest.(list string) "improvement is not a regression" []
          v2.Regress.regressions;
        check Alcotest.bool "improvement reported" true
          (v2.Regress.improvements <> []));
    tc "a doubled stage latency trips the gate" (fun () ->
        let base = parse_json (qor_dump ~latency:0.010 ~wirelength:17.0) in
        let cur = parse_json (qor_dump ~latency:0.020 ~wirelength:17.0) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        check Alcotest.bool "latency regression flagged" true
          (v.Regress.regressions <> []));
    tc "a speedup gauge drop beyond tolerance trips the gate" (fun () ->
        let dump ~speedup ~depth =
          Printf.sprintf
            {|{"counters":{},"gauges":{"server.w8.speedup":%f,
               "server.queue_depth":%f},"timers":{},"probes":{},"spans":0}|}
            speedup depth
        in
        let base = parse_json (dump ~speedup:4.0 ~depth:3.0) in
        (* 4.0 -> 2.0 is a 50% drop: beyond the default 25% tolerance *)
        let cur = parse_json (dump ~speedup:2.0 ~depth:3.0) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        check Alcotest.bool "speedup regression flagged" true
          (v.Regress.regressions <> []);
        (* 4.0 -> 3.5 is within the 25% tolerance *)
        let ok = parse_json (dump ~speedup:3.5 ~depth:3.0) in
        let v2 = Regress.compare_json ~baseline:base ~current:ok () in
        check Alcotest.(list string) "within tolerance passes" []
          v2.Regress.regressions;
        check Alcotest.bool "speedup gauge was gated" true
          (v2.Regress.compared > 0);
        (* a big speedup gain is reported as an improvement *)
        let faster = parse_json (dump ~speedup:6.0 ~depth:3.0) in
        let v3 = Regress.compare_json ~baseline:base ~current:faster () in
        check Alcotest.bool "improvement reported" true
          (v3.Regress.improvements <> []));
    tc "non-speedup gauges are informational only" (fun () ->
        let dump depth =
          Printf.sprintf
            {|{"counters":{},"gauges":{"server.queue_depth":%f},
               "timers":{},"probes":{},"spans":0}|}
            depth
        in
        let base = parse_json (dump 3.0) in
        let cur = parse_json (dump 300.0) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        check Alcotest.(list string) "no regressions" [] v.Regress.regressions;
        check Alcotest.int "nothing gated" 0 v.Regress.compared;
        check Alcotest.bool "noted" true (v.Regress.notes <> []));
    tc "render summarizes the verdict" (fun () ->
        let base = parse_json (qor_dump ~latency:0.010 ~wirelength:17.0) in
        let cur = parse_json (qor_dump ~latency:0.030 ~wirelength:17.0) in
        let v = Regress.compare_json ~baseline:base ~current:cur () in
        let text = Regress.render v in
        check Alcotest.bool "mentions REGRESSIONS" true
          (String.length text > 0
          &&
          let rec find i =
            i + 11 <= String.length text
            && (String.sub text i 11 = "REGRESSIONS" || find (i + 1))
          in
          find 0));
  ]

(* ------------------------------------------------------------------ *)
(* portal cache + counters                                             *)
(* ------------------------------------------------------------------ *)

(* Each test resets the global telemetry + cache so counts are exact. *)
let fresh () =
  T.reset ();
  Portal.clear_cache ();
  (* One shard recovers the exact global LRU these tests assert on;
     multi-shard behaviour is exercised in test_server.ml. *)
  Portal.set_cache_shards 1;
  Portal.set_cache_capacity 512;
  Portal.create_session ()

let submits tool = T.counter ("portal." ^ tool ^ ".submits")
let executions tool = T.counter ("portal." ^ tool ^ ".executions")
let hits tool = T.counter ("portal." ^ tool ^ ".cache_hits")

(* submit and collapse to the display string - these tests assert on
   counters and output bytes, not on the outcome constructors *)
let psubmit s tool input = Portal.outcome_output (Portal.submit_result s tool input)

let portal_tests =
  [
    tc "repeat submission is a cache hit with byte-identical output" (fun () ->
        let s = fresh () in
        let input = "boolean a b\nf = a & b\nsatcount f" in
        let out1 = psubmit s Portal.kbdd input in
        check Alcotest.int "one execution" 1 (executions "kbdd");
        check Alcotest.int "no hit yet" 0 (hits "kbdd");
        let out2 = psubmit s Portal.kbdd input in
        check Alcotest.string "byte-identical" out1 out2;
        check Alcotest.int "still one execution" 1 (executions "kbdd");
        check Alcotest.int "one hit" 1 (hits "kbdd");
        check Alcotest.bool "global stats agree" true
          (Portal.cache_stats () = (1, 1)));
    tc "cache is keyed by tool as well as input" (fun () ->
        let s = fresh () in
        let input = "not a valid anything" in
        ignore (psubmit s Portal.kbdd input);
        ignore (psubmit s Portal.espresso input);
        check Alcotest.int "kbdd executed" 1 (executions "kbdd");
        check Alcotest.int "espresso executed too" 1 (executions "espresso"));
    tc "counters are monotone across submits" (fun () ->
        let s = fresh () in
        let prev = ref (-1) in
        for i = 1 to 5 do
          ignore
            (psubmit s Portal.axb
               (Printf.sprintf "n 1\nrow %d\nrhs %d" i i));
          let now = submits "axb" in
          check Alcotest.bool "monotone" true (now > !prev);
          check Alcotest.int "equals submit count" i now;
          prev := now
        done;
        match T.timer "portal.axb.latency" with
        | Some t -> check Alcotest.int "latency sampled per submit" 5 t.T.count
        | None -> Alcotest.fail "no latency timer");
    tc "runaway rejection counts but does not execute or cache" (fun () ->
        let s = fresh () in
        let big = String.concat "\n" (List.init 3000 (fun _ -> "x")) in
        let out = psubmit s Portal.kbdd big in
        check Alcotest.bool "error text" true
          (String.length out >= 5 && String.sub out 0 5 = "error");
        check Alcotest.int "rejected" 1 (T.counter "portal.kbdd.rejected");
        check Alcotest.int "not executed" 0 (executions "kbdd");
        check Alcotest.int "not cached" 0 (Portal.cache_size ()));
    tc "LRU eviction respects the capacity bound" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 2;
        let input i = Printf.sprintf "n 1\nrow %d\nrhs %d" i i in
        ignore (psubmit s Portal.axb (input 1));
        ignore (psubmit s Portal.axb (input 2));
        ignore (psubmit s Portal.axb (input 3));
        (* capacity held; input 1 was the stalest and got evicted *)
        check Alcotest.int "bounded" 2 (Portal.cache_size ());
        check Alcotest.int "one eviction" 1
          (T.counter "portal.cache.evictions");
        ignore (psubmit s Portal.axb (input 3));
        check Alcotest.int "3 still cached" 1 (hits "axb");
        ignore (psubmit s Portal.axb (input 1));
        check Alcotest.int "1 was re-executed" 4 (executions "axb"));
    tc "LRU refreshes recency on hit" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 2;
        let input i = Printf.sprintf "n 1\nrow %d\nrhs %d" i i in
        ignore (psubmit s Portal.axb (input 1));
        ignore (psubmit s Portal.axb (input 2));
        ignore (psubmit s Portal.axb (input 1));
        (* touch 1 *)
        ignore (psubmit s Portal.axb (input 3));
        (* evicts 2, not 1 *)
        ignore (psubmit s Portal.axb (input 1));
        check Alcotest.int "1 stayed cached" 2 (hits "axb");
        ignore (psubmit s Portal.axb (input 2));
        check Alcotest.int "2 was re-executed" 4 (executions "axb"));
    tc "capacity 0 disables caching" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 0;
        let input = "n 1\nrow 2\nrhs 4" in
        ignore (psubmit s Portal.axb input);
        ignore (psubmit s Portal.axb input);
        check Alcotest.int "executed twice" 2 (executions "axb");
        check Alcotest.int "nothing cached" 0 (Portal.cache_size ()));
    tc "shrinking the capacity evicts down to the bound" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 8;
        for i = 1 to 6 do
          ignore
            (psubmit s Portal.axb
               (Printf.sprintf "n 1\nrow %d\nrhs %d" i i))
        done;
        check Alcotest.int "six cached" 6 (Portal.cache_size ());
        Portal.set_cache_capacity 3;
        check Alcotest.int "evicted to bound" 3 (Portal.cache_size ()));
    tc "cache hits still append to the session history" (fun () ->
        let s = fresh () in
        let input = "n 1\nrow 2\nrhs 4" in
        ignore (psubmit s Portal.axb input);
        ignore (psubmit s Portal.axb input);
        check Alcotest.int "two history entries" 2
          (List.length (Portal.history s Portal.axb)));
    tc "submit opens a portal.execute span on miss only" (fun () ->
        let s = fresh () in
        let input = "boolean a\nf = a\nsize f" in
        ignore (psubmit s Portal.kbdd input);
        ignore (psubmit s Portal.kbdd input);
        let roots = T.spans () in
        check Alcotest.int "one span" 1 (List.length roots);
        match roots with
        | [ sp ] ->
          check Alcotest.string "named" "portal.execute" sp.T.span_name;
          check Alcotest.bool "tool attr" true
            (List.assoc_opt "tool" sp.T.attrs = Some "kbdd")
        | _ -> ());
    tc "counters stay monotone with the cache disabled" (fun () ->
        let s = fresh () in
        Portal.set_cache_capacity 0;
        let input = "n 1\nrow 2\nrhs 4" in
        let prev = ref (-1) in
        for i = 1 to 4 do
          ignore (psubmit s Portal.axb input);
          let now = submits "axb" in
          check Alcotest.bool "monotone" true (now > !prev);
          check Alcotest.int "submits" i now;
          check Alcotest.int "every submit executes" i (executions "axb");
          prev := now
        done;
        check Alcotest.int "never a hit" 0 (hits "axb");
        check Alcotest.int "nothing cached" 0 (Portal.cache_size ()));
    tc "clear_cache mid-session forces re-execution, counters keep" (fun () ->
        let s = fresh () in
        let input = "n 1\nrow 2\nrhs 4" in
        ignore (psubmit s Portal.axb input);
        ignore (psubmit s Portal.axb input);
        check Alcotest.int "one hit before clearing" 1 (hits "axb");
        Portal.clear_cache ();
        check Alcotest.int "cache emptied" 0 (Portal.cache_size ());
        ignore (psubmit s Portal.axb input);
        check Alcotest.int "re-executed after clear" 2 (executions "axb");
        check Alcotest.int "hit counter kept its history" 1 (hits "axb");
        check Alcotest.int "history intact" 3
          (List.length (Portal.history s Portal.axb)));
  ]

(* ------------------------------------------------------------------ *)
(* portal <-> journal integration                                      *)
(* ------------------------------------------------------------------ *)

let journal_outcomes () =
  List.filter_map
    (fun e ->
      if e.Journal.ev_component = "portal" && e.Journal.ev_name = "submission"
      then List.assoc_opt "outcome" e.Journal.ev_attrs
      else None)
    (Journal.events ())

let portal_journal_tests =
  [
    tc "each submission emits one journal event with its outcome" (fun () ->
        let s = fresh () in
        Journal.clear ();
        let input = "boolean a b\nf = a & b\nsatcount f" in
        ignore (psubmit s Portal.kbdd input);
        ignore (psubmit s Portal.kbdd input);
        check
          Alcotest.(list string)
          "executed then cache_hit"
          [ "executed"; "cache_hit" ]
          (journal_outcomes ());
        (match Journal.events () with
        | e :: _ ->
          check Alcotest.bool "tool attr" true
            (List.assoc_opt "tool" e.Journal.ev_attrs = Some "kbdd");
          check Alcotest.bool "digest attr" true
            (match List.assoc_opt "digest" e.Journal.ev_attrs with
            | Some d -> String.length d = 32
            | None -> false);
          check Alcotest.bool "latency attr" true
            (List.mem_assoc "latency_s" e.Journal.ev_attrs)
        | [] -> Alcotest.fail "no events"));
    tc "journal cache_hit events agree with the telemetry counter" (fun () ->
        let s = fresh () in
        Journal.clear ();
        let input i = Printf.sprintf "n 1\nrow %d\nrhs %d" i i in
        ignore (psubmit s Portal.axb (input 1));
        ignore (psubmit s Portal.axb (input 1));
        ignore (psubmit s Portal.axb (input 2));
        ignore (psubmit s Portal.axb (input 1));
        let hit_events =
          List.length
            (List.filter (fun o -> o = "cache_hit") (journal_outcomes ()))
        in
        check Alcotest.int "counter agrees" (hits "axb") hit_events;
        check Alcotest.int "four events total" 4
          (List.length (journal_outcomes ())));
    tc "a runaway rejection logs an Error and dumps the recorder" (fun () ->
        let s = fresh () in
        Journal.clear ();
        let captured = Buffer.create 256 in
        Journal.set_dump_printer (Buffer.add_string captured);
        let out =
          Fun.protect
            ~finally:(fun () -> Journal.set_dump_printer prerr_string)
            (fun () ->
              psubmit s Portal.kbdd
                (String.concat "\n" (List.init 3000 (fun _ -> "x"))))
        in
        check Alcotest.bool "rejected" true
          (String.length out >= 5 && String.sub out 0 5 = "error");
        (* the submission event is there, marked Error, with a reason *)
        let ev =
          List.find
            (fun e -> e.Journal.ev_name = "submission")
            (Journal.events ())
        in
        check Alcotest.string "severity" "ERROR"
          (Journal.severity_to_string ev.Journal.ev_severity);
        check Alcotest.bool "outcome rejected" true
          (List.assoc_opt "outcome" ev.Journal.ev_attrs = Some "rejected");
        check Alcotest.bool "reason recorded" true
          (List.mem_assoc "reason" ev.Journal.ev_attrs);
        (* and the flight recorder dumped the trailing window *)
        let text = Buffer.contents captured in
        let contains needle =
          let nl = String.length needle and hl = String.length text in
          let rec go i =
            i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool "dump happened" true (String.length text > 0);
        check Alcotest.bool "names the runaway guard" true (contains "runaway");
        check Alcotest.bool "names the tool" true (contains "kbdd");
        check Alcotest.bool "window includes the flight recorder header" true
          (contains "flight recorder"));
  ]

(* ------------------------------------------------------------------ *)
(* gauges, histograms, extended timer summaries                        *)
(* ------------------------------------------------------------------ *)

let metric_kinds_tests =
  [
    tc "gauges set, overwrite and list" (fun () ->
        T.reset ();
        check Alcotest.bool "absent" true (T.gauge "g.depth" = None);
        T.set_gauge "g.depth" 3.0;
        T.set_gauge "g.depth" 1.5;
        T.set_gauge "g.other" 7.0;
        check Alcotest.bool "overwritten" true (T.gauge "g.depth" = Some 1.5);
        check
          Alcotest.(list (pair string (float 1e-9)))
          "sorted listing"
          [ ("g.depth", 1.5); ("g.other", 7.0) ]
          (T.gauges ()));
    tc "timer summaries carry p99 and stddev" (fun () ->
        T.reset ();
        (* 100 samples: 1ms..100ms; nearest-rank p99 = 99ms *)
        for i = 1 to 100 do
          T.observe "t.p99" (float_of_int i /. 1000.0)
        done;
        match T.timer "t.p99" with
        | None -> Alcotest.fail "no samples"
        | Some s ->
          check (Alcotest.float 1e-9) "p99" 0.099 s.T.p99_s;
          let samples = List.init 100 (fun i -> float_of_int (i + 1) /. 1000.0) in
          check (Alcotest.float 1e-9) "stddev matches Stats"
            (Vc_util.Stats.stddev samples) s.T.stddev_s);
    tc "define_histogram buckets observations cumulatively" (fun () ->
        T.reset ();
        T.define_histogram ~buckets:[ 0.01; 0.1; 1.0 ] "h.lat";
        T.observe "h.lat" 0.005;
        T.observe "h.lat" 0.05;
        T.observe "h.lat" 0.5;
        T.observe "h.lat" 5.0;
        (* over-range: only in the +Inf count *)
        match T.histogram "h.lat" with
        | None -> Alcotest.fail "histogram vanished"
        | Some h ->
          check
            Alcotest.(list (pair (float 1e-9) int))
            "cumulative buckets"
            [ (0.01, 1); (0.1, 2); (1.0, 3) ]
            h.T.buckets;
          check Alcotest.int "count includes over-range" 4 h.T.hist_count;
          check (Alcotest.float 1e-9) "sum" 5.555 h.T.hist_sum);
    tc "define_histogram back-fills samples already recorded" (fun () ->
        T.reset ();
        T.observe "h.late" 0.05;
        T.observe "h.late" 0.2;
        T.define_histogram ~buckets:[ 0.1; 1.0 ] "h.late";
        match T.histogram "h.late" with
        | Some h ->
          check
            Alcotest.(list (pair (float 1e-9) int))
            "back-filled" [ (0.1, 1); (1.0, 2) ] h.T.buckets
        | None -> Alcotest.fail "not defined");
    tc "define_histogram is idempotent and validates buckets" (fun () ->
        T.reset ();
        T.define_histogram ~buckets:[ 0.1 ] "h.idem";
        T.observe "h.idem" 0.05;
        (* second definition with different buckets must not reset *)
        T.define_histogram ~buckets:[ 0.5; 1.0 ] "h.idem";
        (match T.histogram "h.idem" with
        | Some h ->
          check
            Alcotest.(list (pair (float 1e-9) int))
            "first layout wins" [ (0.1, 1) ] h.T.buckets
        | None -> Alcotest.fail "not defined");
        check Alcotest.bool "empty buckets rejected" true
          (match T.define_histogram ~buckets:[] "h.bad" with
          | () -> false
          | exception Invalid_argument _ -> true);
        check Alcotest.bool "non-increasing rejected" true
          (match T.define_histogram ~buckets:[ 0.5; 0.5 ] "h.bad2" with
          | () -> false
          | exception Invalid_argument _ -> true));
    tc "histogram observations still feed the exact timer" (fun () ->
        T.reset ();
        T.define_histogram "h.both";
        T.observe "h.both" 0.010;
        T.observe "h.both" 0.030;
        match T.timer "h.both" with
        | Some s ->
          check Alcotest.int "timer count" 2 s.T.count;
          check (Alcotest.float 1e-9) "timer max" 0.030 s.T.max_s
        | None -> Alcotest.fail "timer missing");
    tc "reset clears gauges and histogram definitions" (fun () ->
        T.reset ();
        T.set_gauge "g.gone" 1.0;
        T.define_histogram "h.gone";
        T.reset ();
        check Alcotest.bool "gauge gone" true (T.gauge "g.gone" = None);
        check Alcotest.bool "histogram gone" true (T.histogram "h.gone" = None));
    tc "to_json carries gauges and histograms" (fun () ->
        T.reset ();
        T.set_gauge "g.j" 2.5;
        T.define_histogram ~buckets:[ 0.1 ] "h.j";
        T.observe "h.j" 0.05;
        let j = parse_json (T.to_json ()) in
        (match obj_field "gauges" j with
        | Some g -> check Alcotest.bool "gauge value" true
            (obj_field "g.j" g = Some (Json.Num 2.5))
        | None -> Alcotest.fail "no gauges object");
        (match obj_field "histograms" j with
        | Some (Json.Obj [ ("h.j", h) ]) ->
          check Alcotest.bool "count" true (obj_field "count" h = Some (Json.Num 1.0))
        | _ -> Alcotest.fail "no histograms object");
        match obj_field "timers" j with
        | Some (Json.Obj [ ("h.j", t) ]) ->
          check Alcotest.bool "p99 field" true (obj_field "p99_s" t <> None);
          check Alcotest.bool "stddev field" true
            (obj_field "stddev_s" t <> None)
        | _ -> Alcotest.fail "no timers object");
  ]

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let prometheus_tests =
  [
    tc "counters become _total counter families" (fun () ->
        T.reset ();
        T.incr ~by:3 "portal.kbdd.submits";
        let text = T.to_prometheus () in
        check Alcotest.bool "TYPE line" true
          (contains text "# TYPE vc_portal_kbdd_submits_total counter");
        check Alcotest.bool "sample" true
          (contains text "vc_portal_kbdd_submits_total 3\n"));
    tc "gauges become gauge families" (fun () ->
        T.reset ();
        T.set_gauge "portal.cache.size" 17.0;
        let text = T.to_prometheus () in
        check Alcotest.bool "TYPE line" true
          (contains text "# TYPE vc_portal_cache_size gauge");
        check Alcotest.bool "sample" true
          (contains text "vc_portal_cache_size 17\n"));
    tc "defined histograms expose _bucket/_sum/_count" (fun () ->
        T.reset ();
        T.define_histogram ~buckets:[ 0.01; 0.1 ] "flow.route";
        T.observe "flow.route" 0.005;
        T.observe "flow.route" 0.05;
        T.observe "flow.route" 0.5;
        let text = T.to_prometheus () in
        check Alcotest.bool "TYPE histogram" true
          (contains text "# TYPE vc_flow_route_seconds histogram");
        check Alcotest.bool "first bucket" true
          (contains text "vc_flow_route_seconds_bucket{le=\"0.01\"} 1\n");
        check Alcotest.bool "cumulative second bucket" true
          (contains text "vc_flow_route_seconds_bucket{le=\"0.1\"} 2\n");
        check Alcotest.bool "+Inf bucket" true
          (contains text "vc_flow_route_seconds_bucket{le=\"+Inf\"} 3\n");
        check Alcotest.bool "count" true
          (contains text "vc_flow_route_seconds_count 3\n");
        check Alcotest.bool "sum" true
          (contains text "vc_flow_route_seconds_sum 0.555\n");
        (* a histogram-backed timer must not also render as a summary *)
        check Alcotest.bool "no summary family" false
          (contains text "vc_flow_route_seconds{quantile"));
    tc "plain timers render as summaries with exact quantiles" (fun () ->
        T.reset ();
        for i = 1 to 10 do
          T.observe "t.plain" (float_of_int i /. 100.0)
        done;
        let text = T.to_prometheus () in
        check Alcotest.bool "TYPE summary" true
          (contains text "# TYPE vc_t_plain_seconds summary");
        check Alcotest.bool "median" true
          (contains text "vc_t_plain_seconds{quantile=\"0.5\"} 0.05\n");
        check Alcotest.bool "p99" true
          (contains text "vc_t_plain_seconds{quantile=\"0.99\"} 0.1\n");
        check Alcotest.bool "count" true
          (contains text "vc_t_plain_seconds_count 10\n"));
    tc "the journal event count is exported" (fun () ->
        T.reset ();
        Journal.clear ();
        Journal.emit ~component:"x" "e1";
        Journal.emit ~component:"x" "e2";
        check Alcotest.bool "journal counter" true
          (contains (T.to_prometheus ()) "vc_journal_events_total 2\n"));
  ]

(* ------------------------------------------------------------------ *)
(* metrics server (driven over a socketpair - no TCP accept loop)      *)
(* ------------------------------------------------------------------ *)

module MS = Vc_util.Metrics_server

(* Start an exporter on an ephemeral port (to get a [t]), push [req]
   through handle_client over a socketpair, and return the raw response. *)
let with_server ?on_request metrics f =
  let srv = MS.start ?on_request ~announce:false ~metrics ~port:0 () in
  Fun.protect ~finally:(fun () -> MS.stop srv) (fun () -> f srv)

let roundtrip srv req =
  let ours, theirs = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let b = Bytes.of_string req in
  ignore (Unix.write ours b 0 (Bytes.length b));
  MS.handle_client srv theirs;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 1024 in
  (try
     let rec drain () =
       let n = Unix.read ours chunk 0 (Bytes.length chunk) in
       if n > 0 then begin
         Buffer.add_subbytes buf chunk 0 n;
         drain ()
       end
     in
     drain ()
   with Unix.Unix_error _ -> ());
  Unix.close ours;
  Buffer.contents buf

let metrics_server_tests =
  [
    tc "GET /metrics serves the exposition with the right content type"
      (fun () ->
        with_server
          (fun () -> "# TYPE vc_x_total counter\nvc_x_total 1\n")
          (fun srv ->
            let resp = roundtrip srv "GET /metrics HTTP/1.1\r\n\r\n" in
            check Alcotest.bool "200" true (contains resp "HTTP/1.1 200 OK");
            check Alcotest.bool "content type" true
              (contains resp "text/plain; version=0.0.4; charset=utf-8");
            check Alcotest.bool "body" true (contains resp "vc_x_total 1\n")));
    tc "GET /healthz answers ok" (fun () ->
        with_server
          (fun () -> "")
          (fun srv ->
            let resp = roundtrip srv "GET /healthz HTTP/1.1\r\n\r\n" in
            check Alcotest.bool "200" true (contains resp "200 OK");
            check Alcotest.bool "ok body" true (contains resp "ok\n")));
    tc "unknown paths are 404, non-GET is 405, garbage is 400" (fun () ->
        with_server
          (fun () -> "")
          (fun srv ->
            check Alcotest.bool "404" true
              (contains (roundtrip srv "GET /nope HTTP/1.1\r\n\r\n") "404");
            check Alcotest.bool "405" true
              (contains (roundtrip srv "POST /metrics HTTP/1.1\r\n\r\n") "405");
            check Alcotest.bool "400" true
              (contains (roundtrip srv "garbage\r\n\r\n") "400")));
    tc "query strings are stripped before routing" (fun () ->
        with_server
          (fun () -> "body\n")
          (fun srv ->
            check Alcotest.bool "routed" true
              (contains
                 (roundtrip srv "GET /metrics?foo=1 HTTP/1.1\r\n\r\n")
                 "200 OK")));
    tc "a raising metrics thunk degrades to a comment body" (fun () ->
        with_server
          (fun () -> failwith "renderer broke")
          (fun srv ->
            let resp = roundtrip srv "GET /metrics HTTP/1.1\r\n\r\n" in
            check Alcotest.bool "still 200" true (contains resp "200 OK");
            check Alcotest.bool "error comment" true
              (contains resp "# metrics renderer failed")));
    tc "on_request sees the path of every request" (fun () ->
        let seen = ref [] in
        with_server
          ~on_request:(fun p -> seen := p :: !seen)
          (fun () -> "")
          (fun srv ->
            ignore (roundtrip srv "GET /metrics HTTP/1.1\r\n\r\n");
            ignore (roundtrip srv "GET /healthz HTTP/1.1\r\n\r\n");
            check
              Alcotest.(list string)
              "paths" [ "/metrics"; "/healthz" ] (List.rev !seen)));
    tc "port 0 resolves to a real ephemeral port" (fun () ->
        with_server
          (fun () -> "")
          (fun srv -> check Alcotest.bool "nonzero" true (MS.port srv > 0)));
  ]

(* ------------------------------------------------------------------ *)
(* journal degradation (S2: a bad sink must not take the tool down)    *)
(* ------------------------------------------------------------------ *)

let journal_degrade_tests =
  [
    tc "open_jsonl on an unopenable path degrades instead of raising"
      (fun () ->
        Journal.clear ();
        (* a directory cannot be opened as a file *)
        (match Journal.open_jsonl "." with
        | () -> ()
        | exception _ -> Alcotest.fail "open_jsonl raised");
        (* and the tool keeps journaling without any sink *)
        Journal.emit ~component:"degrade" "still.running";
        check Alcotest.int "event recorded" 1 (Journal.event_count ()));
    tc "a sink that starts failing mid-run is detached once" (fun () ->
        Journal.clear ();
        let calls = ref 0 in
        Journal.add_sink "flaky" (fun _ ->
            incr calls;
            if !calls > 1 then failwith "disk full");
        Journal.emit ~component:"degrade" "ok";
        Journal.emit ~component:"degrade" "boom";
        (* detached: further events do not reach the sink *)
        Journal.emit ~component:"degrade" "after";
        Journal.flush ();
        check Alcotest.int "sink saw two events" 2 !calls;
        check Alcotest.int "all events recorded" 3 (Journal.event_count ()));
  ]

(* ------------------------------------------------------------------ *)
(* journal analytics (Journal_query - the engine behind bin/vcstat)    *)
(* ------------------------------------------------------------------ *)

module Q = Vc_util.Journal_query

let ev ?(seq = 1) ?(ts = 0.0) ?(severity = Journal.Info) ?(attrs = [])
    ~component name =
  {
    Journal.ev_seq = seq;
    ev_ts = ts;
    ev_severity = severity;
    ev_component = component;
    ev_name = name;
    ev_attrs = attrs;
  }

let journal_query_tests =
  [
    tc "parse_line round-trips event_to_json" (fun () ->
        Journal.clear ();
        Journal.emit ~severity:Journal.Warn
          ~attrs:[ ("tool", "kbdd"); ("latency_s", "0.0125") ]
          ~component:"portal" "submission";
        let e = List.hd (Journal.events ()) in
        match Q.parse_line (Journal.event_to_json e) with
        | Error msg -> Alcotest.fail msg
        | Ok e' ->
          check Alcotest.int "seq" e.Journal.ev_seq e'.Journal.ev_seq;
          check Alcotest.string "component" "portal" e'.Journal.ev_component;
          check Alcotest.string "name" "submission" e'.Journal.ev_name;
          check Alcotest.bool "severity" true
            (e'.Journal.ev_severity = Journal.Warn);
          check
            Alcotest.(list (pair string string))
            "attrs"
            [ ("tool", "kbdd"); ("latency_s", "0.0125") ]
            e'.Journal.ev_attrs);
    tc "parse_line rejects documents missing required fields" (fun () ->
        check Alcotest.bool "not json" true
          (Result.is_error (Q.parse_line "nope"));
        check Alcotest.bool "no component" true
          (Result.is_error
             (Q.parse_line
                "{\"seq\":1,\"ts\":0,\"severity\":\"INFO\",\"event\":\"x\"}"));
        check Alcotest.bool "bad severity" true
          (Result.is_error
             (Q.parse_line
                "{\"seq\":1,\"ts\":0,\"severity\":\"LOUD\",\"component\":\"c\",\"event\":\"x\"}")));
    tc "summarize counts, error rate and latency percentiles" (fun () ->
        let events =
          List.concat
            [
              List.init 100 (fun i ->
                  ev ~seq:(i + 1)
                    ~attrs:
                      [
                        ( "latency_s",
                          Printf.sprintf "%.6f" (float_of_int (i + 1) /. 1000.0)
                        );
                      ]
                    ~component:"portal" "submission");
              [ ev ~seq:101 ~severity:Journal.Error ~component:"portal" "oops" ];
            ]
        in
        let s = Q.summarize ~top:3 events in
        check Alcotest.int "total" 101 s.Q.s_total;
        check Alcotest.int "component count" 101
          (List.assoc "portal" s.Q.s_by_component);
        check Alcotest.int "errors" 1 s.Q.s_errors;
        check (Alcotest.float 1e-9) "error rate" (1.0 /. 101.0) s.Q.s_error_rate;
        (match s.Q.s_latency with
        | None -> Alcotest.fail "no latency stats"
        | Some l ->
          check Alcotest.int "latency count" 100 l.Q.l_count;
          check (Alcotest.float 1e-9) "p50" 0.050 l.Q.l_p50_s;
          check (Alcotest.float 1e-9) "p90" 0.090 l.Q.l_p90_s;
          check (Alcotest.float 1e-9) "p99" 0.099 l.Q.l_p99_s;
          check (Alcotest.float 1e-9) "max" 0.100 l.Q.l_max_s);
        check Alcotest.int "top-3 slowest" 3 (List.length s.Q.s_slowest);
        match s.Q.s_slowest with
        | (e, l) :: _ ->
          check Alcotest.int "slowest is the 100ms one" 100 e.Journal.ev_seq;
          check (Alcotest.float 1e-9) "slowest latency" 0.100 l
        | [] -> Alcotest.fail "no slowest");
    tc "summary JSON parses and carries the acceptance fields" (fun () ->
        let s =
          Q.summarize
            [
              ev ~seq:1
                ~attrs:[ ("latency_s", "0.002") ]
                ~component:"flow" "stage.end";
            ]
        in
        let j = parse_json (Q.summary_to_json s) in
        check Alcotest.bool "by_component.flow" true
          (Option.bind (obj_field "by_component" j) (obj_field "flow")
          = Some (Json.Num 1.0));
        let all = Option.bind (obj_field "latency" j) (obj_field "all") in
        List.iter
          (fun f ->
            check Alcotest.bool f true
              (Option.bind all (obj_field f) <> None))
          [ "p50_s"; "p90_s"; "p99_s" ]);
    tc "spans_of reconstructs nested begin/end pairs" (fun () ->
        let events =
          [
            ev ~seq:1 ~ts:1.0 ~component:"flow"
              ~attrs:[ ("stage", "outer") ]
              "stage.begin";
            ev ~seq:2 ~ts:1.2 ~component:"flow"
              ~attrs:[ ("stage", "inner") ]
              "stage.begin";
            ev ~seq:3 ~ts:1.5 ~component:"flow"
              ~attrs:[ ("stage", "inner") ]
              "stage.end";
            ev ~seq:4 ~ts:2.0 ~component:"flow"
              ~attrs:[ ("stage", "outer") ]
              "stage.end";
          ]
        in
        match Q.spans_of events with
        | [ outer ] ->
          check Alcotest.string "outer label" "flow/outer" outer.Q.q_name;
          check (Alcotest.float 1e-9) "outer duration" 1.0 outer.Q.q_duration_s;
          (match outer.Q.q_children with
          | [ inner ] ->
            check Alcotest.string "inner label" "flow/inner" inner.Q.q_name;
            check (Alcotest.float 1e-9) "inner duration" 0.3
              inner.Q.q_duration_s
          | l -> Alcotest.fail (Printf.sprintf "%d children" (List.length l)))
        | l -> Alcotest.fail (Printf.sprintf "%d roots" (List.length l)));
    tc "spans_of ignores orphan ends and closes dangling begins" (fun () ->
        let events =
          [
            ev ~seq:1 ~ts:0.5 ~component:"flow"
              ~attrs:[ ("stage", "ghost") ]
              "stage.end";
            ev ~seq:2 ~ts:1.0 ~component:"flow"
              ~attrs:[ ("stage", "open") ]
              "stage.begin";
            ev ~seq:3 ~ts:3.0 ~component:"flow" "last.event";
          ]
        in
        match Q.spans_of events with
        | [ sp ] ->
          check Alcotest.string "label" "flow/open" sp.Q.q_name;
          check (Alcotest.float 1e-9) "closed at last ts" 2.0 sp.Q.q_duration_s
        | l -> Alcotest.fail (Printf.sprintf "%d roots" (List.length l)));
    tc "spans from interleaved traces reconstruct independently" (fun () ->
        (* two requests in flight at once: without per-trace streams the
           global stack would nest B inside A and corrupt both *)
        let events =
          [
            ev ~seq:1 ~ts:1.0 ~component:"portal"
              ~attrs:[ ("trace_id", "aaaa") ]
              "exec.begin";
            ev ~seq:2 ~ts:1.1 ~component:"portal"
              ~attrs:[ ("trace_id", "bbbb") ]
              "exec.begin";
            ev ~seq:3 ~ts:1.5 ~component:"portal"
              ~attrs:[ ("trace_id", "aaaa") ]
              "exec.end";
            ev ~seq:4 ~ts:2.0 ~component:"portal"
              ~attrs:[ ("trace_id", "bbbb") ]
              "exec.end";
          ]
        in
        match Q.spans_of events with
        | [ a; b ] ->
          check Alcotest.int "no spurious nesting" 0
            (List.length a.Q.q_children + List.length b.Q.q_children);
          check (Alcotest.float 1e-9) "trace a duration" 0.5 a.Q.q_duration_s;
          check (Alcotest.float 1e-9) "trace b duration" 0.9 b.Q.q_duration_s
        | l -> Alcotest.fail (Printf.sprintf "%d roots" (List.length l)));
    tc "a dangling begin closes at its own trace's last event" (fun () ->
        let events =
          [
            ev ~seq:1 ~ts:1.0 ~component:"portal"
              ~attrs:[ ("trace_id", "aaaa") ]
              "exec.begin";
            ev ~seq:2 ~ts:1.2 ~component:"portal"
              ~attrs:[ ("trace_id", "aaaa") ]
              "cache.probe";
            (* another trace keeps running long after - it must not
               stretch trace a's dangling span *)
            ev ~seq:3 ~ts:9.0 ~component:"portal"
              ~attrs:[ ("trace_id", "bbbb") ]
              "late.event";
          ]
        in
        match Q.spans_of events with
        | [ sp ] ->
          check (Alcotest.float 1e-9) "closed at trace-local last ts" 0.2
            sp.Q.q_duration_s
        | l -> Alcotest.fail (Printf.sprintf "%d roots" (List.length l)));
    tc "join_requests matches client and server journals by trace id"
      (fun () ->
        let client trace latency =
          ev ~component:"vcload"
            ~attrs:
              [
                ("trace_id", trace); ("tool", "axb");
                ("outcome", "sent");
                ("latency_s", Printf.sprintf "%.6f" latency);
              ]
            "replay.request"
        in
        let replied trace total =
          ev ~component:"server"
            ~attrs:
              [
                ("trace_id", trace); ("tool", "axb"); ("session", "s1");
                ("outcome", "executed");
                ("total_s", Printf.sprintf "%.6f" total);
                ("phase.queue", "0.010000"); ("phase.execute", "0.020000");
              ]
            "request.replied"
        in
        let join =
          Q.join_requests
            [
              client "aaaa" 0.100;
              ev ~component:"server"
                ~attrs:[ ("trace_id", "aaaa"); ("session", "s1") ]
                "request.admitted";
              replied "aaaa" 0.080;
              client "bbbb" 0.050;
              replied "bbbb" 0.040;
              (* server-only: a request someone submitted by hand *)
              replied "cccc" 0.010;
              (* client-only: the reply the server journal lost *)
              client "dddd" 0.030;
            ]
        in
        check Alcotest.int "client total" 3 join.Q.rj_client_total;
        check Alcotest.int "server total" 3 join.Q.rj_server_total;
        check Alcotest.int "matched" 2 join.Q.rj_matched;
        check (Alcotest.float 1e-9) "match rate" (2.0 /. 3.0)
          join.Q.rj_match_rate;
        let t =
          match join.Q.rj_timelines with t :: _ -> t | [] -> Alcotest.fail "empty"
        in
        check Alcotest.string "first-appearance order" "aaaa" t.Q.rt_trace;
        check Alcotest.(option string) "server outcome wins" (Some "executed")
          t.Q.rt_outcome;
        check Alcotest.(option string) "session" (Some "s1") t.Q.rt_session;
        check
          Alcotest.(option (float 1e-9))
          "wire = client - server" (Some 0.020) t.Q.rt_wire_s;
        check
          Alcotest.(list (pair string (float 1e-9)))
          "phases parsed back"
          [ ("queue", 0.010); ("execute", 0.020) ]
          t.Q.rt_phases;
        (* breakdown rows come out in the canonical phase order *)
        check
          Alcotest.(list string)
          "phase order"
          [ "queue"; "execute"; "server"; "wire"; "client" ]
          (List.map fst (Q.phase_breakdown join));
        (match List.assoc_opt "wire" (Q.phase_breakdown join) with
        | Some s ->
          check Alcotest.int "wire samples from matched pairs only" 2
            s.Q.l_count
        | None -> Alcotest.fail "no wire row");
        (* the JSON document parses and carries the acceptance fields *)
        let j = parse_json (Q.requests_to_json join) in
        check Alcotest.bool "matched" true
          (obj_field "matched" j = Some (Json.Num 2.0));
        check Alcotest.bool "match_rate" true
          (match obj_field "match_rate" j with
          | Some (Json.Num r) -> Float.abs (r -. (2.0 /. 3.0)) < 1e-4
          | _ -> false);
        check Alcotest.bool "phases.queue.p50_s" true
          (Option.bind
             (Option.bind (obj_field "phases" j) (obj_field "queue"))
             (obj_field "p50_s")
          <> None);
        match obj_field "slowest" j with
        | Some (Json.Arr (_ :: _)) -> ()
        | _ -> Alcotest.fail "no slowest array");
    tc "join_requests treats admission rejects as server-side sightings"
      (fun () ->
        let join =
          Q.join_requests
            [
              ev ~component:"vcload"
                ~attrs:
                  [
                    ("trace_id", "eeee"); ("tool", "kbdd");
                    ("latency_s", "0.002"); ("outcome", "rejected");
                  ]
                "replay.request";
              ev ~component:"server"
                ~attrs:[ ("trace_id", "eeee"); ("tool", "kbdd") ]
                "job.rejected.overloaded";
            ]
        in
        check Alcotest.int "matched" 1 join.Q.rj_matched;
        check (Alcotest.float 1e-9) "rate" 1.0 join.Q.rj_match_rate;
        match join.Q.rj_timelines with
        | [ t ] ->
          check Alcotest.(option string) "outcome" (Some "rejected")
            t.Q.rt_outcome;
          check Alcotest.bool "no server total without a reply" true
            (t.Q.rt_server_s = None && t.Q.rt_wire_s = None)
        | l -> Alcotest.fail (Printf.sprintf "%d timelines" (List.length l)));
    tc "join_requests over server-only journals is vacuously matched"
      (fun () ->
        let join =
          Q.join_requests
            [
              ev ~component:"server"
                ~attrs:[ ("trace_id", "ffff"); ("total_s", "0.001") ]
                "request.replied";
            ]
        in
        check Alcotest.int "no clients" 0 join.Q.rj_client_total;
        check (Alcotest.float 1e-9) "rate defaults to 1" 1.0
          join.Q.rj_match_rate);
    tc "funnel_of extracts the cohort funnel in order" (fun () ->
        let stage seq name count =
          ev ~seq ~component:"cohort"
            ~attrs:[ ("stage", name); ("count", string_of_int count) ]
            "funnel.stage"
        in
        let stages =
          Q.funnel_of
            [
              stage 1 "registered" 17500;
              stage 2 "watched_video" 7191;
              ev ~seq:3 ~component:"cohort" "unrelated";
              stage 4 "certificates" 386;
            ]
        in
        check
          Alcotest.(list (pair string int))
          "stages in order"
          [ ("registered", 17500); ("watched_video", 7191);
            ("certificates", 386) ]
          (List.map (fun s -> (s.Q.f_stage, s.Q.f_count)) stages));
    tc "funnel JSON and spans JSON parse" (fun () ->
        let stages = [ { Q.f_stage = "registered"; f_count = 10 } ] in
        (match obj_field "funnel" (parse_json (Q.funnel_to_json stages)) with
        | Some (Json.Arr [ _ ]) -> ()
        | _ -> Alcotest.fail "funnel json");
        let spans =
          Q.spans_of
            [
              ev ~seq:1 ~ts:0.0 ~component:"c" "work.begin";
              ev ~seq:2 ~ts:1.0 ~component:"c" "work.end";
            ]
        in
        match obj_field "spans" (parse_json (Q.spans_to_json spans)) with
        | Some (Json.Arr [ sp ]) ->
          check Alcotest.bool "label from prefix" true
            (obj_field "name" sp = Some (Json.Str "c/work"))
        | _ -> Alcotest.fail "spans json");
  ]

(* ------------------------------------------------------------------ *)
(* time series (per-domain rings, merge-on-read, the sampler)          *)
(* ------------------------------------------------------------------ *)

module Ts = Vc_util.Timeseries
module Prof = Vc_util.Profile

let check_raises_invalid_arg f =
  check Alcotest.bool "raises Invalid_argument" true
    (match f () with _ -> false | exception Invalid_argument _ -> true)

let timeseries_tests =
  [
    tc "points come back merged in timestamp order" (fun () ->
        Ts.reset ();
        Ts.record ~ts:3.0 "ts.a" 30.0;
        Ts.record ~ts:1.0 "ts.a" 10.0;
        Ts.record ~ts:2.0 "ts.a" 20.0;
        check
          Alcotest.(list (pair (float 1e-9) (float 1e-9)))
          "sorted by ts"
          [ (1.0, 10.0); (2.0, 20.0); (3.0, 30.0) ]
          (List.map
             (fun p -> (p.Ts.p_ts, p.Ts.p_value))
             (Ts.points "ts.a")));
    tc "the ring keeps only the newest capacity points" (fun () ->
        Ts.reset ();
        Ts.define ~capacity:4 "ts.ring";
        for i = 1 to 10 do
          Ts.record ~ts:(float_of_int i) "ts.ring" (float_of_int i)
        done;
        check
          Alcotest.(list (float 1e-9))
          "last four" [ 7.0; 8.0; 9.0; 10.0 ]
          (List.map (fun p -> p.Ts.p_value) (Ts.points "ts.ring")));
    tc "define validates capacity and first definition wins" (fun () ->
        Ts.reset ();
        check_raises_invalid_arg (fun () -> Ts.define ~capacity:0 "ts.bad");
        Ts.define ~capacity:2 "ts.pin";
        Ts.define ~capacity:99 "ts.pin";
        for i = 1 to 5 do
          Ts.record ~ts:(float_of_int i) "ts.pin" (float_of_int i)
        done;
        check Alcotest.int "capacity 2 held" 2
          (List.length (Ts.points "ts.pin")));
    tc "cells from different domains merge on read" (fun () ->
        Ts.reset ();
        Ts.record ~ts:1.0 "ts.merge" 1.0;
        Domain.join
          (Domain.spawn (fun () -> Ts.record ~ts:2.0 "ts.merge" 2.0));
        check
          Alcotest.(list (float 1e-9))
          "both domains" [ 1.0; 2.0 ]
          (List.map (fun p -> p.Ts.p_value) (Ts.points "ts.merge")));
    tc "last and names" (fun () ->
        Ts.reset ();
        check Alcotest.bool "empty last" true (Ts.last "ts.x" = None);
        Ts.record ~ts:1.0 "ts.x" 1.0;
        Ts.record ~ts:2.0 "ts.x" 5.0;
        Ts.record ~ts:1.0 "ts.b" 0.0;
        (match Ts.last "ts.x" with
        | Some p -> check (Alcotest.float 1e-9) "newest" 5.0 p.Ts.p_value
        | None -> Alcotest.fail "no last point");
        check Alcotest.bool "names sorted" true
          (let names = Ts.names () in
           List.mem "ts.b" names && List.mem "ts.x" names
           && names = List.sort compare names));
    tc "varz_json parses and carries telemetry, series and profile"
      (fun () ->
        T.reset ();
        Ts.reset ();
        T.incr "varz.c";
        Ts.record ~ts:1.0 "varz.series" 42.0;
        let j = parse_json (Ts.varz_json ()) in
        (match obj_field "telemetry" j with
        | Some (Json.Obj _) -> ()
        | _ -> Alcotest.fail "no telemetry object");
        (match
           Option.bind (obj_field "series" j) (obj_field "varz.series")
         with
        | Some (Json.Arr [ Json.Arr [ Json.Num 1.0; Json.Num 42.0 ] ]) -> ()
        | _ -> Alcotest.fail "series not rendered as [ts, value] pairs");
        match Option.bind (obj_field "profile" j) (obj_field "ticks") with
        | Some (Json.Num _) -> ()
        | _ -> Alcotest.fail "no profile.ticks");
    tc "sampler ticks derive gauge, rate, ratio and percentile series"
      (fun () ->
        T.reset ();
        Ts.reset ();
        with_fake_clock [ 100.0; 102.0; 104.0 ] (fun () ->
            let sources =
              [
                Ts.Gauge "s.gauge";
                Ts.Rate { counters = [ "s.count" ]; series = "s.qps" };
                Ts.Ratio
                  {
                    num = [ "s.hit" ];
                    den = [ "s.hit"; "s.miss" ];
                    series = "s.hit_rate";
                  };
                Ts.Percentiles "s.lat";
              ]
            in
            (* create reads the clock once (100.0) to stamp last_ts *)
            let sampler =
              Ts.Sampler.create ~profile:false ~sources ~interval:1.0 ()
            in
            T.set_gauge "s.gauge" 7.0;
            T.incr ~by:20 "s.count";
            T.incr ~by:3 "s.hit";
            T.incr ~by:1 "s.miss";
            T.observe "s.lat" 0.010;
            Ts.Sampler.tick sampler;
            (* tick at 102.0: dt = 2s *)
            check (Alcotest.float 1e-9) "gauge copied" 7.0
              (match Ts.last "s.gauge" with
              | Some p -> p.Ts.p_value
              | None -> nan);
            check (Alcotest.float 1e-9) "rate = 20 / 2s" 10.0
              (match Ts.last "s.qps" with
              | Some p -> p.Ts.p_value
              | None -> nan);
            check (Alcotest.float 1e-9) "ratio = 3 / 4" 0.75
              (match Ts.last "s.hit_rate" with
              | Some p -> p.Ts.p_value
              | None -> nan);
            check (Alcotest.float 1e-9) "p99 in ms" 10.0
              (match Ts.last "s.lat.p99_ms" with
              | Some p -> p.Ts.p_value
              | None -> nan);
            (* second tick with no new counts: rate falls to 0, the
               idle ratio records no point *)
            Ts.Sampler.tick sampler;
            check (Alcotest.float 1e-9) "idle rate" 0.0
              (match Ts.last "s.qps" with
              | Some p -> p.Ts.p_value
              | None -> nan);
            check Alcotest.int "ratio skipped the idle tick" 1
              (List.length (Ts.points "s.hit_rate"))));
    tc "sampler derives per-worker utilization from busy timers"
      (fun () ->
        T.reset ();
        Ts.reset ();
        with_fake_clock [ 100.0; 102.0; 104.0 ] (fun () ->
            let sources =
              [ Ts.Utilization { prefix = "w."; suffix = ".busy" } ]
            in
            let sampler =
              Ts.Sampler.create ~profile:false ~sources ~interval:1.0 ()
            in
            Ts.Sampler.tick sampler;
            (* the first tick snapshots the (empty) totals *)
            T.observe "w.0.busy" 0.5;
            T.observe "w.0.busy" 0.5;
            T.observe "w.1.busy" 10.0;
            Ts.Sampler.tick sampler;
            (* dt = 2s: worker 0 was busy 1.0s -> 0.5; worker 1's 10s
               clamps to 1.0 *)
            check (Alcotest.float 1e-9) "half busy" 0.5
              (match Ts.last "w.0.util" with
              | Some p -> p.Ts.p_value
              | None -> nan);
            check (Alcotest.float 1e-9) "clamped" 1.0
              (match Ts.last "w.1.util" with
              | Some p -> p.Ts.p_value
              | None -> nan)));
    tc "sampler start/stop with a zero interval never spawns" (fun () ->
        let s =
          Ts.Sampler.start ~profile:false ~sources:[] ~interval:0.0 ()
        in
        Ts.Sampler.stop s;
        Ts.Sampler.stop s (* idempotent *));
  ]

(* ------------------------------------------------------------------ *)
(* continuous profiler                                                 *)
(* ------------------------------------------------------------------ *)

let profile_tests =
  [
    tc "with_frame nests and restores on exception" (fun () ->
        Prof.reset ();
        Prof.with_frame "outer" (fun () ->
            Prof.with_frame "inner" (fun () ->
                check
                  Alcotest.(list string)
                  "outermost first" [ "outer"; "inner" ]
                  (Prof.current_stack ())));
        check Alcotest.(list string) "popped" [] (Prof.current_stack ());
        (try
           Prof.with_frame "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        check Alcotest.(list string) "restored after raise" []
          (Prof.current_stack ()));
    tc "ticks aggregate folded stacks and count idle domains" (fun () ->
        Prof.reset ();
        Prof.register ();
        Prof.tick ();
        Prof.with_frame "worker" (fun () ->
            Prof.with_frame "execute" (fun () -> Prof.tick ()));
        check Alcotest.int "two ticks" 2 (Prof.ticks ());
        check Alcotest.bool "at least one sample per tick" true
          (Prof.samples () >= 2);
        let folded = Prof.folded () in
        check Alcotest.bool "idle observed" true
          (List.mem_assoc "idle" folded);
        check Alcotest.bool "folded stack observed" true
          (List.mem_assoc "worker;execute" folded));
    tc "journal:true emits one sample event per distinct stack" (fun () ->
        Prof.reset ();
        Journal.clear ();
        Prof.with_frame "worker" (fun () -> Prof.tick ~journal:true ());
        let samples =
          List.filter
            (fun e ->
              e.Journal.ev_component = "profile"
              && e.Journal.ev_name = "sample")
            (Journal.events ())
        in
        check Alcotest.bool "at least the worker stack" true
          (List.exists
             (fun e ->
               List.assoc_opt "stack" e.Journal.ev_attrs = Some "worker")
             samples);
        List.iter
          (fun e ->
            check Alcotest.bool "tick attr present" true
              (List.mem_assoc "tick" e.Journal.ev_attrs);
            check Alcotest.bool "count attr parses" true
              (match List.assoc_opt "count" e.Journal.ev_attrs with
              | Some c -> int_of_string_opt c <> None
              | None -> false))
          samples);
    tc "to_folded_text renders stack-space-count lines" (fun () ->
        check Alcotest.string "folded format" "a;b 3\nidle 1\n"
          (Prof.to_folded_text [ ("a;b", 3); ("idle", 1) ]));
    tc "flamegraph_svg is well-formed and accounts for every sample"
      (fun () ->
        let svg =
          Prof.flamegraph_svg ~ticks:4
            [ ("worker;execute;minisat", 3); ("worker;cache", 1); ("idle", 4) ]
        in
        check Alcotest.bool "svg element" true
          (String.starts_with ~prefix:"<svg" svg);
        check Alcotest.bool "closed" true (contains svg "</svg>");
        check Alcotest.bool "frames drawn" true (contains svg "<rect");
        check Alcotest.bool "metadata comment" true
          (contains svg
             "<!-- flamegraph samples=8 root_samples=8 ticks=4 -->");
        check Alcotest.bool "tool frame titled" true
          (contains svg "minisat: 3 sample(s)"));
    tc "flamegraph_svg escapes frame names" (fun () ->
        let svg = Prof.flamegraph_svg [ ("a<b>&\"c\"", 1) ] in
        check Alcotest.bool "escaped" true
          (contains svg "a&lt;b&gt;&amp;&quot;c&quot;");
        check Alcotest.bool "raw angle gone" false (contains svg "a<b>"));
    tc "empty input still renders a parseable document" (fun () ->
        let svg = Prof.flamegraph_svg [] in
        check Alcotest.bool "svg" true (String.starts_with ~prefix:"<svg" svg);
        check Alcotest.bool "zero samples" true
          (contains svg "samples=0 root_samples=0"));
    tc "reset clears aggregates and the caller's stack" (fun () ->
        Prof.with_frame "x" (fun () -> Prof.tick ());
        Prof.reset ();
        check Alcotest.int "ticks cleared" 0 (Prof.ticks ());
        check Alcotest.int "samples cleared" 0 (Prof.samples ());
        check Alcotest.(list string) "stack cleared" []
          (Prof.current_stack ()));
  ]

(* ------------------------------------------------------------------ *)
(* metrics server: registered routes, readiness, head scanning         *)
(* ------------------------------------------------------------------ *)

let routes_tests =
  [
    tc "registered routes serve, unregister 404s, and the 404 lists them"
      (fun () ->
        MS.register_route "/custom" (fun () ->
            {
              MS.rp_status = "200 OK";
              rp_content_type = "application/json";
              rp_body = "{\"ok\":true}\n";
            });
        Fun.protect
          ~finally:(fun () -> MS.unregister_route "/custom")
          (fun () ->
            check Alcotest.bool "listed" true
              (List.mem "/custom" (MS.registered_routes ()));
            with_server
              (fun () -> "")
              (fun srv ->
                let resp = roundtrip srv "GET /custom HTTP/1.1\r\n\r\n" in
                check Alcotest.bool "served" true
                  (contains resp "{\"ok\":true}");
                check Alcotest.bool "content type" true
                  (contains resp "application/json");
                let missing = roundtrip srv "GET /nope HTTP/1.1\r\n\r\n" in
                check Alcotest.bool "404 hints the custom route" true
                  (contains missing "/custom");
                check Alcotest.bool "404 hints the built-ins" true
                  (contains missing "/metrics")));
        with_server
          (fun () -> "")
          (fun srv ->
            check Alcotest.bool "unregistered is 404" true
              (contains (roundtrip srv "GET /custom HTTP/1.1\r\n\r\n") "404")));
    tc "register_route rejects paths without a leading slash" (fun () ->
        check_raises_invalid_arg (fun () ->
            MS.register_route "nope" (fun () ->
                {
                  MS.rp_status = "200 OK";
                  rp_content_type = "text/plain";
                  rp_body = "";
                })));
    tc "a raising route handler degrades to a 500" (fun () ->
        MS.register_route "/boom" (fun () -> failwith "handler broke");
        Fun.protect
          ~finally:(fun () -> MS.unregister_route "/boom")
          (fun () ->
            with_server
              (fun () -> "")
              (fun srv ->
                let resp = roundtrip srv "GET /boom HTTP/1.1\r\n\r\n" in
                check Alcotest.bool "500" true (contains resp "500");
                check Alcotest.bool "reason" true
                  (contains resp "route handler failed"))));
    tc "/readyz follows the ready probe" (fun () ->
        let ready = ref true in
        MS.set_ready_probe (fun () -> !ready);
        Fun.protect
          ~finally:(fun () -> MS.set_ready_probe (fun () -> true))
          (fun () ->
            with_server
              (fun () -> "")
              (fun srv ->
                check Alcotest.bool "ready is 200 ok" true
                  (contains
                     (roundtrip srv "GET /readyz HTTP/1.1\r\n\r\n")
                     "200 OK");
                ready := false;
                let resp = roundtrip srv "GET /readyz HTTP/1.1\r\n\r\n" in
                check Alcotest.bool "draining is 503" true
                  (contains resp "503");
                check Alcotest.bool "draining body" true
                  (contains resp "draining"))));
    tc "request heads larger than one read chunk still route" (fun () ->
        (* read_head scans chunk windows with a 3-byte carry; a >1 KiB
           header block crosses several chunks and the terminator can
           straddle a boundary *)
        with_server
          (fun () -> "ok")
          (fun srv ->
            let pad = String.make 3000 'x' in
            let resp =
              roundtrip srv
                (Printf.sprintf
                   "GET /metrics HTTP/1.1\r\nX-Pad: %s\r\n\r\n" pad)
            in
            check Alcotest.bool "200 despite the long head" true
              (contains resp "200 OK")));
  ]

(* ------------------------------------------------------------------ *)
(* journal-query: continuous-profile reconstruction                    *)
(* ------------------------------------------------------------------ *)

let profile_query_tests =
  [
    tc "profile_folded rebuilds stacks and tick counts from the journal"
      (fun () ->
        let sample seq tick stack count =
          ev ~seq ~component:"profile"
            ~attrs:
              [
                ("tick", string_of_int tick); ("stack", stack);
                ("count", string_of_int count);
              ]
            "sample"
        in
        let module Q = Vc_util.Journal_query in
        let ticks, folded =
          Q.profile_folded
            [
              sample 1 1 "idle" 3;
              sample 2 1 "worker;execute;minisat" 1;
              sample 3 2 "idle" 4;
              ev ~seq:4 ~component:"server" "request.replied";
            ]
        in
        check Alcotest.int "distinct ticks" 2 ticks;
        check
          Alcotest.(list (pair string int))
          "aggregated, most samples first"
          [ ("idle", 7); ("worker;execute;minisat", 1) ]
          folded);
    tc "profile_folded over an unrelated journal is empty" (fun () ->
        let module Q = Vc_util.Journal_query in
        check
          Alcotest.(pair int (list (pair string int)))
          "no samples" (0, [])
          (Q.profile_folded [ ev ~seq:1 ~component:"portal" "submission" ]));
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("telemetry", telemetry_tests);
      ("json", json_tests);
      ("clock", clock_tests);
      ("journal", journal_tests);
      ("regress", regress_tests);
      ("portal-cache", portal_tests);
      ("portal-journal", portal_journal_tests);
      ("metric-kinds", metric_kinds_tests);
      ("prometheus", prometheus_tests);
      ("metrics-server", metrics_server_tests);
      ("metrics-server-routes", routes_tests);
      ("journal-degrade", journal_degrade_tests);
      ("journal-query", journal_query_tests);
      ("timeseries", timeseries_tests);
      ("profile", profile_tests);
      ("profile-query", profile_query_tests);
    ]
