examples/project_routing.ml: Out_channel Printf Vc_mooc Vc_place Vc_route
