lib/sat/cnf.ml: Array Buffer Hashtbl List Printf String Vc_util
