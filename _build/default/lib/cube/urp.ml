let rec tautology (f : Cover.t) =
  if Cover.has_universe_cube f then true
  else if Cover.is_empty f then false
  else
    match Cover.most_binate_var f with
    | None ->
      (* unate cover: tautology iff it has a universe cube, checked above *)
      false
    | Some x ->
      tautology (Cover.cofactor f ~var:x ~value:true)
      && tautology (Cover.cofactor f ~var:x ~value:false)

let rec complement (f : Cover.t) =
  let n = f.Cover.num_vars in
  if Cover.has_universe_cube f then Cover.empty n
  else
    match f.Cover.cubes with
    | [] -> Cover.top n
    | [ c ] -> Cover.make n (Cube.complement_literals c)
    | _ -> begin
      let x =
        match Cover.most_binate_var f with
        | Some x -> x
        | None -> begin
          (* unate cover: still split, on the most frequent literal column *)
          let occupancy i =
            List.length
              (List.filter (fun c -> Cube.get c i <> Cube.Both) f.Cover.cubes)
          in
          let best = ref 0 and best_count = ref (-1) in
          for i = 0 to n - 1 do
            let k = occupancy i in
            if k > !best_count then begin
              best := i;
              best_count := k
            end
          done;
          !best
        end
      in
      let comp_pos = complement (Cover.cofactor f ~var:x ~value:true) in
      let comp_neg = complement (Cover.cofactor f ~var:x ~value:false) in
      let with_literal value (g : Cover.t) =
        let fld = if value then Cube.Pos else Cube.Neg in
        Cover.make n (List.map (fun c -> Cube.set c x fld) g.Cover.cubes)
      in
      Cover.union (with_literal true comp_pos) (with_literal false comp_neg)
    end

let cube_in_cover c f = tautology (Cover.cofactor_cube f c)

let cover_contains f (g : Cover.t) =
  List.for_all (fun c -> cube_in_cover c f) g.Cover.cubes

let equivalent f g = cover_contains f g && cover_contains g f

let sharp a b =
  let n = Cube.num_vars a in
  if Cube.num_vars b <> n then invalid_arg "Urp.sharp: width mismatch";
  if Cube.is_empty (Cube.intersect a b) then [ a ]
  else begin
    (* a # b = union over literals i of b of: a AND (flipped literal i) *)
    let pieces =
      List.filter_map
        (fun i ->
          match Cube.get b i with
          | Cube.Pos -> Some (Cube.intersect a (Cube.set (Cube.universe n) i Cube.Neg))
          | Cube.Neg -> Some (Cube.intersect a (Cube.set (Cube.universe n) i Cube.Pos))
          | Cube.Both | Cube.Empty -> None)
        (List.init n (fun i -> i))
    in
    List.filter (fun c -> not (Cube.is_empty c)) pieces
  end

let cover_sharp (f : Cover.t) b =
  Cover.make f.Cover.num_vars
    (List.concat_map (fun c -> sharp c b) f.Cover.cubes)

let intersect (f : Cover.t) (g : Cover.t) =
  if f.Cover.num_vars <> g.Cover.num_vars then
    invalid_arg "Urp.intersect: width mismatch";
  let cubes =
    List.concat_map
      (fun a -> List.map (fun b -> Cube.intersect a b) g.Cover.cubes)
      f.Cover.cubes
  in
  Cover.make f.Cover.num_vars cubes
