(* The durability layer: the Cache_store spill format (round-trip,
   torn-tail and corrupted-record recovery, supersede + compaction),
   the Hashring consistent-hash properties that vcfront's failover
   correctness rests on, journal segment rotation (plus the
   append-on-reopen fix and the vcstat segment expansion), and the
   portal's disk tier warm start. *)

open Helpers
module Store = Vc_util.Cache_store
module Hashring = Vc_util.Hashring
module Journal = Vc_util.Journal
module Q = Vc_util.Journal_query
module Portal = Vc_mooc.Portal

(* fresh scratch directory per call; tests clean up what they create *)
let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_store ?lanes ?compact_bytes f =
  let dir = temp_dir "vc_spill" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () -> f dir (Store.open_store ?lanes ?compact_bytes dir))

(* ------------------------------------------------------------------ *)
(* spill store                                                         *)
(* ------------------------------------------------------------------ *)

(* arbitrary binary-ish keys and payloads, including empties, newlines
   and NULs - the record format must not care *)
let arbitrary_entries =
  QCheck.(
    list_of_size Gen.(int_range 1 40)
      (pair (string_of_size Gen.(int_range 0 24)) (string_of_size Gen.(int_range 0 200))))

let store_tests =
  [
    prop ~count:50 "spill round-trips arbitrary entries across reopen"
      arbitrary_entries
      (fun entries ->
        let dir = temp_dir "vc_spill" in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let st = Store.open_store ~lanes:4 dir in
            List.iter (fun (k, v) -> Store.append st ~key:k v) entries;
            (* latest append per key wins *)
            let expect = Hashtbl.create 16 in
            List.iter (fun (k, v) -> Hashtbl.replace expect k v) entries;
            let ok_live =
              Hashtbl.fold
                (fun k v acc -> acc && Store.find st k = Some v)
                expect true
            in
            Store.close st;
            (* reopen replays the files; every entry must come back
               byte-identical *)
            let st2 = Store.open_store dir in
            let ok_reopen =
              Hashtbl.fold
                (fun k v acc -> acc && Store.find st2 k = Some v)
                expect true
            in
            let ok_len = Store.length st2 = Hashtbl.length expect in
            Store.close st2;
            ok_live && ok_reopen && ok_len));
    tc "torn tail is truncated away; earlier records survive" (fun () ->
        let dir = temp_dir "vc_spill" in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let st = Store.open_store ~lanes:1 dir in
            Store.append st ~key:"alpha" "first payload";
            Store.append st ~key:"beta" "second payload";
            Store.close st;
            (* chop a few bytes off the lane file, as a kill mid-write
               would *)
            let lane = Filename.concat dir "lane-00.spill" in
            let size = (Unix.stat lane).Unix.st_size in
            let fd = Unix.openfile lane [ Unix.O_WRONLY ] 0 in
            Unix.ftruncate fd (size - 3);
            Unix.close fd;
            let st = Store.open_store dir in
            check Alcotest.(option string) "first record intact"
              (Some "first payload") (Store.find st "alpha");
            check Alcotest.(option string) "torn record dropped" None
              (Store.find st "beta");
            (* the file was truncated back to the valid prefix, so new
               appends land cleanly after it *)
            Store.append st ~key:"gamma" "third payload";
            Store.close st;
            let st = Store.open_store dir in
            check Alcotest.(option string) "append after recovery"
              (Some "third payload") (Store.find st "gamma");
            check Alcotest.int "two live keys" 2 (Store.length st);
            Store.close st));
    tc "a corrupted record is dropped, the prefix before it kept" (fun () ->
        let dir = temp_dir "vc_spill" in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let st = Store.open_store ~lanes:1 dir in
            Store.append st ~key:"keep" "kept payload";
            let last_good = Store.file_bytes st in
            Store.append st ~key:"bad" "soon to be damaged";
            Store.close st;
            (* flip one payload byte inside the second record *)
            let lane = Filename.concat dir "lane-00.spill" in
            let fd = Unix.openfile lane [ Unix.O_WRONLY ] 0 in
            ignore (Unix.lseek fd (last_good + 12) Unix.SEEK_SET);
            ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
            Unix.close fd;
            let st = Store.open_store dir in
            check Alcotest.(option string) "prefix intact"
              (Some "kept payload") (Store.find st "keep");
            check Alcotest.(option string) "damaged record absent" None
              (Store.find st "bad");
            Store.close st));
    tc "re-appending supersedes and compaction reclaims dead bytes"
      (fun () ->
        (* tiny threshold so the automatic path is reachable, but use
           the forced entry point for determinism *)
        with_store ~lanes:1 ~compact_bytes:64 (fun dir st ->
            ignore dir;
            for i = 1 to 50 do
              Store.append st ~key:"hot" (Printf.sprintf "version %d" i)
            done;
            Store.append st ~key:"cold" "stable";
            check Alcotest.(option string) "latest wins" (Some "version 50")
              (Store.find st "hot");
            check Alcotest.int "two live keys" 2 (Store.length st);
            let before = Store.file_bytes st in
            let reclaimed = Store.compact st in
            check Alcotest.bool "bytes reclaimed" true (reclaimed >= 0);
            check Alcotest.bool "file shrank to live size" true
              (Store.file_bytes st <= before
              && Store.file_bytes st = Store.live_bytes st);
            check Alcotest.(option string) "hot survives compaction"
              (Some "version 50") (Store.find st "hot");
            check Alcotest.(option string) "cold survives compaction"
              (Some "stable") (Store.find st "cold");
            Store.close st));
    tc "iter visits every live entry exactly once" (fun () ->
        with_store ~lanes:4 (fun _dir st ->
            for i = 0 to 19 do
              Store.append st ~key:(Printf.sprintf "k%d" i)
                (Printf.sprintf "v%d" i)
            done;
            let seen = Hashtbl.create 16 in
            Store.iter st (fun k v -> Hashtbl.replace seen k v);
            check Alcotest.int "20 entries" 20 (Hashtbl.length seen);
            check Alcotest.(option string) "payload matches" (Some "v7")
              (Hashtbl.find_opt seen "k7");
            Store.close st));
    tc "closed store raises instead of corrupting" (fun () ->
        with_store (fun _dir st ->
            Store.close st;
            check Alcotest.bool "append raises" true
              (match Store.append st ~key:"k" "v" with
              | exception Invalid_argument _ -> true
              | () -> false)));
  ]

(* ------------------------------------------------------------------ *)
(* consistent hashing                                                  *)
(* ------------------------------------------------------------------ *)

let keys_of n = List.init n (Printf.sprintf "session-%d")

let hashring_tests =
  [
    tc "routing is deterministic and lands on a member" (fun () ->
        let ring =
          Hashring.make [ ("a", ()); ("b", ()); ("c", ()); ("d", ()) ]
        in
        List.iter
          (fun k ->
            match (Hashring.find ring k, Hashring.find ring k) with
            | Some (n1, ()), Some (n2, ()) ->
              check Alcotest.string "stable" n1 n2;
              check Alcotest.bool "member" true (Hashring.mem ring n1)
            | _ -> Alcotest.fail "empty ring?")
          (keys_of 200));
    tc "removal remaps only the removed node's keys" (fun () ->
        let nodes = [ ("a", ()); ("b", ()); ("c", ()); ("d", ()) ] in
        let ring = Hashring.make nodes in
        let ring' = Hashring.remove ring "c" in
        let moved = ref 0 in
        List.iter
          (fun k ->
            match (Hashring.find ring k, Hashring.find ring' k) with
            | Some (before, ()), Some (after, ()) ->
              if before = "c" then begin
                incr moved;
                check Alcotest.bool "remapped off c" true (after <> "c")
              end
              else check Alcotest.string "sticky" before after
            | _ -> Alcotest.fail "empty ring?")
          (keys_of 1000);
        check Alcotest.bool "c owned some keys" true (!moved > 0));
    tc "adding a node back restores the original mapping" (fun () ->
        let ring = Hashring.make [ ("a", 1); ("b", 2); ("c", 3) ] in
        let ring' = Hashring.add (Hashring.remove ring "b") "b" 2 in
        List.iter
          (fun k ->
            check
              Alcotest.(option (pair string int))
              k (Hashring.find ring k) (Hashring.find ring' k))
          (keys_of 500));
    tc "every node owns a share of the keyspace" (fun () ->
        let names = [ "a"; "b"; "c"; "d"; "e" ] in
        let ring = Hashring.make (List.map (fun n -> (n, ())) names) in
        let counts = Hashtbl.create 8 in
        List.iter
          (fun k ->
            match Hashring.find ring k with
            | Some (n, ()) ->
              Hashtbl.replace counts n
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts n))
            | None -> Alcotest.fail "empty ring?")
          (keys_of 2000);
        List.iter
          (fun n ->
            let c = Option.value ~default:0 (Hashtbl.find_opt counts n) in
            check Alcotest.bool (n ^ " owns keys") true (c > 0))
          names);
    tc "empty ring finds nothing; membership accessors agree" (fun () ->
        let empty = Hashring.make [] in
        check Alcotest.bool "is_empty" true (Hashring.is_empty empty);
        check Alcotest.bool "find none" true
          (Hashring.find empty "anything" = None);
        let ring = Hashring.make ~replicas:8 [ ("x", ()); ("y", ()) ] in
        check Alcotest.int "size" 2 (Hashring.size ring);
        check Alcotest.int "replicas" 8 (Hashring.replicas ring);
        check Alcotest.(list string) "nodes sorted" [ "x"; "y" ]
          (List.map fst (Hashring.nodes ring)));
    prop ~count:200 "find always returns a member node"
      QCheck.(pair (list_of_size Gen.(int_range 0 6) (string_of_size Gen.(int_range 1 8))) string)
      (fun (names, key) ->
        let ring = Hashring.make (List.map (fun n -> (n, ())) names) in
        match Hashring.find ring key with
        | None -> Hashring.is_empty ring
        | Some (n, ()) -> Hashring.mem ring n);
  ]

(* ------------------------------------------------------------------ *)
(* journal segments                                                    *)
(* ------------------------------------------------------------------ *)

let emit_n n =
  for i = 1 to n do
    Journal.emit ~component:"durability"
      ~attrs:[ ("i", string_of_int i) ]
      "segment.test"
  done;
  Journal.flush ()

let journal_tests =
  [
    tc "segment_path inserts the index before the extension" (fun () ->
        check Alcotest.string "jsonl" "run.00003.jsonl"
          (Journal.segment_path "run.jsonl" 3);
        check Alcotest.string "nested" "/tmp/x/run.00000.jsonl"
          (Journal.segment_path "/tmp/x/run.jsonl" 0);
        check Alcotest.string "no extension" "run.00012"
          (Journal.segment_path "run" 12));
    tc "reopening an unsegmented journal appends instead of truncating"
      (fun () ->
        let file = Filename.temp_file "vc_journal" ".jsonl" in
        Fun.protect
          ~finally:(fun () -> Sys.remove file)
          (fun () ->
            Journal.open_jsonl file;
            emit_n 2;
            Journal.remove_sink ("jsonl:" ^ file);
            (* the restart: same path, previous events must survive *)
            Journal.open_jsonl file;
            emit_n 3;
            Journal.remove_sink ("jsonl:" ^ file);
            let events = (Q.load_file file).Q.events in
            check Alcotest.int "both runs present" 5 (List.length events)));
    tc "rotation produces segments vcstat expands with no seq gaps"
      (fun () ->
        let dir = temp_dir "vc_segs" in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let base = Filename.concat dir "run.jsonl" in
            (* tiny limit: every flush rotates *)
            Journal.open_jsonl ~segment_bytes:256 base;
            emit_n 20;
            Journal.remove_sink ("jsonl:" ^ base);
            let segments = Q.expand_segments [ base ] in
            check Alcotest.bool "rotated into several segments" true
              (List.length segments >= 2);
            List.iter
              (fun s ->
                check Alcotest.bool (s ^ " exists") true (Sys.file_exists s))
              segments;
            (* a second run appends new segments after the old ones *)
            Journal.open_jsonl ~segment_bytes:256 base;
            emit_n 5;
            Journal.remove_sink ("jsonl:" ^ base);
            let segments' = Q.expand_segments [ base ] in
            check Alcotest.bool "second run extended the set" true
              (List.length segments' > List.length segments);
            let s = Q.summarize (Q.load_files segments').Q.events in
            check Alcotest.int "no seq gaps across the union" 0 s.Q.s_seq_gaps;
            check Alcotest.bool "seqs seen" true (s.Q.s_seq_distinct > 0)));
    tc "summarize counts missing seqs as gaps" (fun () ->
        let ev seq =
          {
            Journal.ev_seq = seq;
            ev_ts = float_of_int seq;
            ev_severity = Journal.Info;
            ev_component = "x";
            ev_name = "e";
            ev_attrs = [];
          }
        in
        let s = Q.summarize [ ev 1; ev 2; ev 5 ] in
        check Alcotest.int "min" 1 s.Q.s_seq_min;
        check Alcotest.int "max" 5 s.Q.s_seq_max;
        check Alcotest.int "distinct" 3 s.Q.s_seq_distinct;
        check Alcotest.int "two missing" 2 s.Q.s_seq_gaps);
    tc "glob_match covers the star and question-mark cases" (fun () ->
        List.iter
          (fun (pat, name, expect) ->
            check Alcotest.bool
              (Printf.sprintf "%s ~ %s" pat name)
              expect
              (Q.glob_match pat name))
          [
            ("*.jsonl", "run.00001.jsonl", true);
            ("run.*.jsonl", "run.00001.jsonl", true);
            ("run.?????.jsonl", "run.00001.jsonl", true);
            ("run.????.jsonl", "run.00001.jsonl", false);
            ("*", "", true);
            ("?", "", false);
            ("run.jsonl", "run.jsonl", true);
            ("run.jsonl", "run.jsonl2", false);
          ]);
  ]

(* ------------------------------------------------------------------ *)
(* portal disk tier                                                    *)
(* ------------------------------------------------------------------ *)

let echo =
  {
    Portal.tool_name = "echo";
    description = "test tool";
    max_input_lines = 3;
    execute = (fun s -> "echo: " ^ s);
  }

let portal_tests =
  [
    tc "disk tier serves memory misses and warm-starts a restart"
      (fun () ->
        let dir = temp_dir "vc_portal_cache" in
        Fun.protect
          ~finally:(fun () ->
            Portal.unset_cache_dir ();
            Portal.clear_cache ();
            rm_rf dir)
          (fun () ->
            Portal.clear_cache ();
            Portal.set_cache_dir dir;
            let s = Portal.create_session () in
            (match Portal.submit_result s echo "payload" with
            | Portal.Executed out ->
              check Alcotest.string "executed" "echo: payload" out
            | _ -> Alcotest.fail "expected Executed");
            (* drop the memory shards but keep the disk tier: the
               repeat submission must be served by the disk probe *)
            Portal.clear_cache ();
            (match Portal.submit_result s echo "payload" with
            | Portal.Cache_hit out ->
              check Alcotest.string "disk payload" "echo: payload" out
            | _ -> Alcotest.fail "expected Cache_hit from disk");
            check Alcotest.int "disk hit counted" 1 (Portal.cache_disk_hits ());
            (* simulate a restart: detach, clear memory, re-attach *)
            Portal.unset_cache_dir ();
            Portal.clear_cache ();
            check Alcotest.int "cold" 0 (Portal.cache_size ());
            Portal.set_cache_dir dir;
            check Alcotest.(option string) "dir recorded" (Some dir)
              (Portal.cache_dir ());
            check Alcotest.bool "warm-started into memory" true
              (Portal.cache_size () > 0);
            match Portal.submit_result s echo "payload" with
            | Portal.Cache_hit out ->
              check Alcotest.string "warm payload" "echo: payload" out
            | _ -> Alcotest.fail "expected Cache_hit after warm start"));
    tc "evictions spill to disk instead of being lost" (fun () ->
        let dir = temp_dir "vc_portal_cache" in
        Fun.protect
          ~finally:(fun () ->
            Portal.unset_cache_dir ();
            Portal.clear_cache ();
            Portal.set_cache_capacity 512;
            rm_rf dir)
          (fun () ->
            Portal.clear_cache ();
            Portal.set_cache_dir dir;
            Portal.set_cache_shards 1;
            Portal.set_cache_capacity 2;
            let s = Portal.create_session () in
            ignore (Portal.submit_result s echo "one");
            ignore (Portal.submit_result s echo "two");
            ignore (Portal.submit_result s echo "three");
            (* "one" was evicted from the 2-entry memory cache, but the
               disk tier still has it *)
            check Alcotest.bool "evicted from memory" true
              (Portal.cache_size () <= 2);
            match Portal.submit_result s echo "one" with
            | Portal.Cache_hit out ->
              check Alcotest.string "spilled payload" "echo: one" out
            | Portal.Executed _ -> Alcotest.fail "lost the evicted result"
            | Portal.Rejected _ -> Alcotest.fail "rejected?"));
    tc "unset_cache_dir degrades to memory-only cleanly" (fun () ->
        Portal.clear_cache ();
        Portal.unset_cache_dir ();
        check Alcotest.(option string) "no dir" None (Portal.cache_dir ());
        let s = Portal.create_session () in
        (match Portal.submit_result s echo "solo" with
        | Portal.Executed _ -> ()
        | _ -> Alcotest.fail "expected Executed");
        match Portal.submit_result s echo "solo" with
        | Portal.Cache_hit _ -> ()
        | _ -> Alcotest.fail "expected memory Cache_hit");
  ]

let () =
  Alcotest.run "durability"
    [
      ("cache-store", store_tests);
      ("hashring", hashring_tests);
      ("journal-segments", journal_tests);
      ("portal-disk-tier", portal_tests);
    ]
