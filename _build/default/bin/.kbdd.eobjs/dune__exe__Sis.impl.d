bin/sis.ml: In_channel List Sys Vc_multilevel Vc_network
