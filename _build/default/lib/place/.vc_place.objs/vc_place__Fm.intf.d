lib/place/fm.mli: Pnet
