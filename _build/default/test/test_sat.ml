open Helpers
module Cnf = Vc_sat.Cnf
module Solver = Vc_sat.Solver
module Dpll = Vc_sat.Dpll
module Tseitin = Vc_sat.Tseitin
module Expr = Vc_cube.Expr

(* pigeonhole principle PHP(p, h): p pigeons, h holes; unsat when p > h *)
let pigeonhole pigeons holes =
  let var p h = (p * holes) + h + 1 in
  let at_least_one =
    List.init pigeons (fun p -> List.init holes (fun h -> var p h))
  in
  let at_most_one =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p1 < p2 then Some [ -var p1 h; -var p2 h ] else None)
              (List.init pigeons (fun p -> p)))
          (List.init pigeons (fun p -> p)))
      (List.init holes (fun h -> h))
  in
  Cnf.make (pigeons * holes) (at_least_one @ at_most_one)

let cnf_tests =
  [
    tc "make validates literals" (fun () ->
        Alcotest.check_raises "zero" (Invalid_argument "Cnf.make: bad literal 0")
          (fun () -> ignore (Cnf.make 2 [ [ 1; 0 ] ]));
        Alcotest.check_raises "range" (Invalid_argument "Cnf.make: bad literal 5")
          (fun () -> ignore (Cnf.make 2 [ [ 5 ] ])));
    tc "eval" (fun () ->
        let f = Cnf.make 2 [ [ 1; 2 ]; [ -1 ] ] in
        check Alcotest.bool "01" true (Cnf.eval f [| false; false; true |]);
        check Alcotest.bool "10" false (Cnf.eval f [| false; true; false |]));
    tc "dimacs parse" (fun () ->
        let f =
          Cnf.parse_dimacs
            "c a comment\nc cnf in the comment\np cnf 3 2\n1 -2 0\n2 3 0\n"
        in
        check Alcotest.int "vars" 3 f.Cnf.num_vars;
        check Alcotest.int "clauses" 2 (Cnf.num_clauses f));
    tc "dimacs clause spanning lines" (fun () ->
        let f = Cnf.parse_dimacs "p cnf 3 1\n1 2\n3 0\n" in
        check Alcotest.int "one clause" 1 (Cnf.num_clauses f));
    tc "dimacs errors" (fun () ->
        List.iter
          (fun s ->
            match Cnf.parse_dimacs s with
            | exception Failure _ -> ()
            | _ -> Alcotest.failf "expected failure for %S" s)
          [ "1 2 0\n"; "p cnf x y\n"; "p cnf 2 1\n1 2\n" ]);
    prop "dimacs round trip" arbitrary_cnf (fun f ->
        let f' = Cnf.parse_dimacs (Cnf.to_dimacs f) in
        f'.Cnf.num_vars = f.Cnf.num_vars
        && List.map Array.to_list f'.Cnf.clauses
           = List.map Array.to_list f.Cnf.clauses);
    tc "random_ksat shape" (fun () ->
        let f = Cnf.random_ksat ~seed:1 ~num_vars:20 ~num_clauses:50 ~k:3 in
        check Alcotest.int "clauses" 50 (Cnf.num_clauses f);
        List.iter
          (fun c ->
            check Alcotest.int "k distinct vars" 3
              (List.length
                 (List.sort_uniq compare (List.map abs (Array.to_list c)))))
          f.Cnf.clauses);
  ]

let model_is_valid f = function
  | Solver.Sat model -> Cnf.eval f model
  | Solver.Unsat | Solver.Unknown -> true

let solver_tests =
  [
    tc "trivial cases" (fun () ->
        check Alcotest.bool "empty formula sat" true
          (Solver.is_sat (Cnf.make 1 []));
        check Alcotest.bool "empty clause unsat" false
          (Solver.is_sat (Cnf.make 1 [ [] ]));
        check Alcotest.bool "unit conflict" false
          (Solver.is_sat (Cnf.make 1 [ [ 1 ]; [ -1 ] ])));
    tc "tautological clause ignored" (fun () ->
        check Alcotest.bool "sat" true
          (Solver.is_sat (Cnf.make 2 [ [ 1; -1 ]; [ 2 ] ])));
    tc "pigeonhole unsat" (fun () ->
        check Alcotest.bool "php(4,3)" false (Solver.is_sat (pigeonhole 4 3));
        check Alcotest.bool "php(5,4)" false (Solver.is_sat (pigeonhole 5 4)));
    tc "pigeonhole sat side" (fun () ->
        check Alcotest.bool "php(3,3)" true (Solver.is_sat (pigeonhole 3 3)));
    prop ~count:150 "CDCL agrees with brute force" arbitrary_cnf (fun f ->
        Solver.is_sat f = brute_force_sat f);
    prop ~count:150 "CDCL models satisfy the formula" arbitrary_cnf (fun f ->
        model_is_valid f (fst (Solver.solve f)));
    prop ~count:80 "DPLL agrees with CDCL" arbitrary_cnf (fun f ->
        Dpll.is_sat f = Solver.is_sat f);
    prop ~count:80 "DPLL models satisfy the formula" arbitrary_cnf (fun f ->
        match fst (Dpll.solve f) with
        | Solver.Sat m -> Cnf.eval f m
        | Solver.Unsat | Solver.Unknown -> true);
    tc "conflict budget yields Unknown" (fun () ->
        let f = pigeonhole 7 6 in
        let config = { Solver.default_config with max_conflicts = Some 3 } in
        match fst (Solver.solve ~config f) with
        | Solver.Unknown -> ()
        | Solver.Sat _ | Solver.Unsat ->
          (* a tiny budget might still finish; only fail if wrong answer *)
          check Alcotest.bool "consistent" false (Solver.is_sat f));
    tc "statistics populated" (fun () ->
        let f = Cnf.random_ksat ~seed:5 ~num_vars:40 ~num_clauses:170 ~k:3 in
        let _, stats = Solver.solve f in
        check Alcotest.bool "propagated" true (stats.Solver.propagations > 0));
  ]

let ablation_tests =
  let configs =
    [
      ("no learning", { Solver.default_config with use_learning = false });
      ("no vsids", { Solver.default_config with use_vsids = false });
      ("no restarts", { Solver.default_config with use_restarts = false });
      ("no phase saving", { Solver.default_config with use_phase_saving = false });
      ( "everything off",
        {
          Solver.default_config with
          use_learning = false;
          use_vsids = false;
          use_restarts = false;
          use_phase_saving = false;
        } );
    ]
  in
  List.map
    (fun (name, config) ->
      prop ~count:60
        (Printf.sprintf "config '%s' remains sound" name)
        arbitrary_cnf
        (fun f ->
          match fst (Solver.solve ~config f) with
          | Solver.Sat m -> Cnf.eval f m && brute_force_sat f
          | Solver.Unsat -> not (brute_force_sat f)
          | Solver.Unknown -> false))
    configs
  @ [
      tc "learning reduces conflicts on pigeonhole" (fun () ->
          let f = pigeonhole 5 4 in
          let _, with_learning = Solver.solve f in
          let _, without =
            Solver.solve
              ~config:{ Solver.default_config with use_learning = false }
              f
          in
          check Alcotest.bool
            (Printf.sprintf "%d <= %d" with_learning.Solver.conflicts
               without.Solver.conflicts)
            true
            (with_learning.Solver.conflicts <= without.Solver.conflicts));
    ]

let tseitin_tests =
  [
    prop ~count:150 "encoding is equisatisfiable" (arbitrary_expr ()) (fun e ->
        let sat_expr =
          Array.exists (fun v -> v) (Expr.truth_table (Expr.vars e) e)
        in
        Solver.is_sat (Tseitin.sat_of_expr e) = sat_expr);
    prop ~count:100 "equivalence checking matches truth tables"
      (QCheck.pair (arbitrary_expr ()) (arbitrary_expr ()))
      (fun (a, b) -> Tseitin.equivalent a b = Expr.equivalent a b);
    prop ~count:100 "counterexamples are genuine"
      (QCheck.pair (arbitrary_expr ()) (arbitrary_expr ()))
      (fun (a, b) ->
        match Tseitin.counterexample a b with
        | None -> Expr.equivalent a b
        | Some cex ->
          let env v = Option.value ~default:false (List.assoc_opt v cex) in
          Expr.eval env a <> Expr.eval env b);
    tc "encoding size is linear" (fun () ->
        (* a chain of n ANDs: clauses must grow linearly, not exponentially *)
        let rec chain i =
          if i = 0 then Expr.Var "x0"
          else Expr.And (Expr.Var (Printf.sprintf "x%d" i), chain (i - 1))
        in
        let enc = Tseitin.encode (chain 30) in
        check Alcotest.bool "linear clauses" true
          (Cnf.num_clauses enc.Tseitin.cnf < 200));
  ]

let () =
  Alcotest.run "sat"
    [
      ("cnf", cnf_tests);
      ("solver", solver_tests);
      ("ablation", ablation_tests);
      ("tseitin", tseitin_tests);
    ]
