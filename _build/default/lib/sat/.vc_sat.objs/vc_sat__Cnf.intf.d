lib/sat/cnf.mli:
