module Expr = Vc_cube.Expr

type encoding = {
  cnf : Cnf.t;
  output : Cnf.lit;
  var_of_name : (string * int) list;
}

type builder = {
  mutable next : int;
  mutable clauses : int list list;
  names : (string, int) Hashtbl.t;
}

let fresh b =
  let v = b.next in
  b.next <- v + 1;
  v

let add b clause = b.clauses <- clause :: b.clauses

let input_var b name =
  match Hashtbl.find_opt b.names name with
  | Some v -> v
  | None ->
    let v = fresh b in
    Hashtbl.add b.names name v;
    v

(* Returns a literal equivalent to the subexpression. *)
let rec encode_expr b = function
  | Expr.Const true ->
    let v = fresh b in
    add b [ v ];
    v
  | Expr.Const false ->
    let v = fresh b in
    add b [ -v ];
    v
  | Expr.Var name -> input_var b name
  | Expr.Not e -> -encode_expr b e
  | Expr.And (x, y) ->
    let a = encode_expr b x and c = encode_expr b y in
    let o = fresh b in
    (* o <-> a & c *)
    add b [ -o; a ];
    add b [ -o; c ];
    add b [ o; -a; -c ];
    o
  | Expr.Or (x, y) ->
    let a = encode_expr b x and c = encode_expr b y in
    let o = fresh b in
    add b [ o; -a ];
    add b [ o; -c ];
    add b [ -o; a; c ];
    o
  | Expr.Xor (x, y) ->
    let a = encode_expr b x and c = encode_expr b y in
    let o = fresh b in
    add b [ -o; a; c ];
    add b [ -o; -a; -c ];
    add b [ o; -a; c ];
    add b [ o; a; -c ];
    o

let encode e =
  let b = { next = 1; clauses = []; names = Hashtbl.create 16 } in
  (* register inputs first so their variable numbers are stable/low *)
  List.iter (fun v -> ignore (input_var b v)) (Expr.vars e);
  let output = encode_expr b e in
  let cnf = Cnf.make (b.next - 1) (List.rev b.clauses) in
  let var_of_name =
    Hashtbl.fold (fun name v acc -> (name, v) :: acc) b.names []
    |> List.sort compare
  in
  { cnf; output; var_of_name }

let sat_of_expr e =
  let enc = encode e in
  Cnf.make enc.cnf.Cnf.num_vars
    ([ enc.output ] :: List.map Array.to_list enc.cnf.Cnf.clauses)

let miter a b = sat_of_expr (Expr.Xor (a, b))

let equivalent a b =
  match Solver.solve (miter a b) with
  | Solver.Unsat, _ -> true
  | Solver.Sat _, _ -> false
  | Solver.Unknown, _ -> assert false

let counterexample a b =
  let e = Expr.Xor (a, b) in
  let enc = encode e in
  let cnf =
    Cnf.make enc.cnf.Cnf.num_vars
      ([ enc.output ] :: List.map Array.to_list enc.cnf.Cnf.clauses)
  in
  match Solver.solve cnf with
  | Solver.Unsat, _ -> None
  | Solver.Sat model, _ ->
    Some (List.map (fun (name, v) -> (name, model.(v))) enc.var_of_name)
  | Solver.Unknown, _ -> assert false
