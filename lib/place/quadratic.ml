module Sparse = Vc_linalg.Sparse

type solver = Cg | Gauss_seidel

type result = {
  placement : Pnet.placement;
  solves : int;
  iterations : int;
}

type region = { x0 : float; y0 : float; x1 : float; y1 : float }

let clamp v lo hi = max lo (min hi v)

let clamp_into r (x, y) = (clamp x r.x0 r.x1, clamp y r.y0 r.y1)

(* Solve the QP for the subset of movable cells [movable] (cell -> dense
   index), with every other pin treated as an anchor clamped into
   [region].  Updates [p] in place for the movable cells. *)
let solve_subset t (p : Pnet.placement) region movable solver =
  let n = Hashtbl.length movable in
  if n = 0 then (0, 0)
  else begin
    let a = Sparse.builder n in
    let bx = Array.make n 0.0 and by = Array.make n 0.0 in
    (* tiny pull to the region center keeps floating cells well-posed *)
    let cx = (region.x0 +. region.x1) /. 2.0 in
    let cy = (region.y0 +. region.y1) /. 2.0 in
    let eps = 1e-6 in
    Hashtbl.iter
      (fun _ idx ->
        Sparse.add a idx idx eps;
        bx.(idx) <- bx.(idx) +. (eps *. cx);
        by.(idx) <- by.(idx) +. (eps *. cy))
      movable;
    let handle_net (net : Pnet.net) =
      let pins = Array.of_list net.Pnet.pins in
      let k = Array.length pins in
      if k >= 2 then begin
        let w = 1.0 /. float_of_int (k - 1) in
        let classify pin =
          match pin with
          | Pnet.Cell c -> begin
            match Hashtbl.find_opt movable c with
            | Some idx -> `Movable idx
            | None -> `Anchor (clamp_into region (p.Pnet.xs.(c), p.Pnet.ys.(c)))
          end
          | Pnet.Pad i ->
            let _, x, y = t.Pnet.pads.(i) in
            `Anchor (clamp_into region (x, y))
        in
        let kinds = Array.map classify pins in
        for i = 0 to k - 1 do
          for j = i + 1 to k - 1 do
            match (kinds.(i), kinds.(j)) with
            | `Movable u, `Movable v ->
              Sparse.add a u u w;
              Sparse.add a v v w;
              Sparse.add a u v (-.w);
              Sparse.add a v u (-.w)
            | `Movable u, `Anchor (x, y) | `Anchor (x, y), `Movable u ->
              Sparse.add a u u w;
              bx.(u) <- bx.(u) +. (w *. x);
              by.(u) <- by.(u) +. (w *. y)
            | `Anchor _, `Anchor _ -> ()
          done
        done
      end
    in
    Array.iter handle_net t.Pnet.nets;
    let m = Sparse.finalize a in
    let run b =
      match solver with
      | Cg -> Sparse.conjugate_gradient m b
      | Gauss_seidel -> Sparse.gauss_seidel ~tol:1e-8 m b
    in
    let sol_x, it1 = run bx in
    let sol_y, it2 = run by in
    Hashtbl.iter
      (fun cell idx ->
        let x, y = clamp_into region (sol_x.(idx), sol_y.(idx)) in
        p.Pnet.xs.(cell) <- x;
        p.Pnet.ys.(cell) <- y)
      movable;
    (2, it1 + it2)
  end

let all_cells t = List.init t.Pnet.num_cells (fun i -> i)

let movable_table cells =
  let tbl = Hashtbl.create 64 in
  List.iteri (fun idx c -> Hashtbl.replace tbl c idx) cells;
  tbl

let global ?(solver = Cg) t =
  let p = Pnet.center_placement t in
  let region = { x0 = 0.0; y0 = 0.0; x1 = t.Pnet.width; y1 = t.Pnet.height } in
  let solves, iterations =
    solve_subset t p region (movable_table (all_cells t)) solver
  in
  { placement = p; solves; iterations }

let place ?(solver = Cg) ?(max_depth = 4) ?(min_cells = 4) t =
  let p = Pnet.center_placement t in
  let solves = ref 0 and iterations = ref 0 in
  let solve cells region =
    let s, i = solve_subset t p region (movable_table cells) solver in
    solves := !solves + s;
    iterations := !iterations + i
  in
  let rec recurse cells region depth =
    solve cells region;
    if depth < max_depth && List.length cells > min_cells then begin
      let wide = region.x1 -. region.x0 >= region.y1 -. region.y0 in
      let coord c = if wide then p.Pnet.xs.(c) else p.Pnet.ys.(c) in
      let sorted =
        List.sort (fun a b -> compare (coord a) (coord b)) cells
      in
      let half = (List.length sorted + 1) / 2 in
      let rec split i acc = function
        | [] -> (List.rev acc, [])
        | rest when i = half -> (List.rev acc, rest)
        | c :: rest -> split (i + 1) (c :: acc) rest
      in
      let lo_cells, hi_cells = split 0 [] sorted in
      let lo_region, hi_region =
        if wide then begin
          let mid = (region.x0 +. region.x1) /. 2.0 in
          ({ region with x1 = mid }, { region with x0 = mid })
        end
        else begin
          let mid = (region.y0 +. region.y1) /. 2.0 in
          ({ region with y1 = mid }, { region with y0 = mid })
        end
      in
      recurse lo_cells lo_region (depth + 1);
      recurse hi_cells hi_region (depth + 1)
    end
  in
  let region = { x0 = 0.0; y0 = 0.0; x1 = t.Pnet.width; y1 = t.Pnet.height } in
  recurse (all_cells t) region 0;
  Vc_util.Journal.emit ~component:"place"
    ~attrs:
      [
        ("cells", string_of_int t.Pnet.num_cells);
        ("solves", string_of_int !solves);
        ("cg_iterations", string_of_int !iterations);
      ]
    "quadratic.done";
  { placement = p; solves = !solves; iterations = !iterations }
