(* grader: the cloud auto-grader as a CLI.
   Usage:
     grader assignment <1-4>              print what the student downloads
     grader reference  <1-4>              print a full-credit submission
     grader grade      <1-4> <file>       grade an uploaded submission *)

let usage () =
  prerr_endline
    "usage: grader assignment <1-4> | grader reference <1-4> | grader grade \
     <1-4> <submission-file>   (plus --stats / --trace FILE / --journal FILE / --metrics-port N)";
  exit 2

let project n =
  match List.find_opt (fun p -> p.Vc_mooc.Projects.p_id = n) Vc_mooc.Projects.all with
  | Some p -> p
  | None ->
    prerr_endline "grader: project number must be 1-4";
    exit 2

let () =
  match Vc_util.Telemetry.cli Sys.argv with
  | [| _; "assignment"; n |] ->
    print_string (project (int_of_string n)).Vc_mooc.Projects.p_assignment
  | [| _; "reference"; n |] ->
    print_string ((project (int_of_string n)).Vc_mooc.Projects.p_reference ())
  | [| _; "grade"; n; path |] ->
    let p = project (int_of_string n) in
    let submission = In_channel.with_open_text path In_channel.input_all in
    let g =
      Vc_util.Telemetry.define_histogram "grader.grade";
      Vc_util.Telemetry.timed_span "grader.grade" (fun () ->
          Vc_mooc.Autograder.grade p.Vc_mooc.Projects.p_grader submission)
    in
    print_string (Vc_mooc.Autograder.render g);
    if g.Vc_mooc.Autograder.earned < g.Vc_mooc.Autograder.possible then exit 1
  | _ -> usage ()
