type spec = {
  mutable dim : int option;
  mutable meth : [ `Lu | `Cg | `Gs ];
  mutable dense_rows : float array list; (* reversed *)
  mutable triplets : (int * int * float) list;
  mutable rhs : float array option;
}

let parse_spec text =
  let spec =
    { dim = None; meth = `Lu; dense_rows = []; triplets = []; rhs = None }
  in
  let floats ctx toks = Array.of_list (List.map (Vc_util.Tok.parse_float ~context:ctx) toks) in
  let handle line =
    match Vc_util.Tok.split_words line with
    | [] -> ()
    | [ "n"; v ] -> spec.dim <- Some (Vc_util.Tok.parse_int ~context:"n" v)
    | [ "method"; "lu" ] -> spec.meth <- `Lu
    | [ "method"; "cg" ] -> spec.meth <- `Cg
    | [ "method"; "gs" ] -> spec.meth <- `Gs
    | [ "method"; m ] -> failwith ("unknown method " ^ m)
    | "row" :: toks -> spec.dense_rows <- floats "row" toks :: spec.dense_rows
    | [ "entry"; i; j; v ] ->
      spec.triplets <-
        ( Vc_util.Tok.parse_int ~context:"entry row" i,
          Vc_util.Tok.parse_int ~context:"entry col" j,
          Vc_util.Tok.parse_float ~context:"entry value" v )
        :: spec.triplets
    | "rhs" :: toks -> spec.rhs <- Some (floats "rhs" toks)
    | cmd :: _ -> failwith ("unknown directive " ^ cmd)
  in
  List.iter handle (Vc_util.Tok.logical_lines ~comment:'#' text);
  spec

let solve spec =
  let n =
    match spec.dim with Some n when n > 0 -> n | Some _ | None -> failwith "missing or bad 'n'"
  in
  let b =
    match spec.rhs with
    | Some b when Array.length b = n -> b
    | Some _ -> failwith "rhs length differs from n"
    | None -> failwith "missing 'rhs'"
  in
  let have_dense = spec.dense_rows <> [] in
  let have_sparse = spec.triplets <> [] in
  if have_dense && have_sparse then failwith "mix of 'row' and 'entry' input";
  if not (have_dense || have_sparse) then failwith "no matrix given";
  let sparse () =
    if have_sparse then Sparse.of_triplets n spec.triplets
    else begin
      let rows = Array.of_list (List.rev spec.dense_rows) in
      let triplets = ref [] in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j v -> if v <> 0.0 then triplets := (i, j, v) :: !triplets)
            row)
        rows;
      Sparse.of_triplets n !triplets
    end
  in
  let dense () =
    if have_dense then begin
      let rows = Array.of_list (List.rev spec.dense_rows) in
      if Array.length rows <> n then failwith "row count differs from n";
      Array.iter
        (fun r -> if Array.length r <> n then failwith "row length differs from n")
        rows;
      Dense.of_rows rows
    end
    else Sparse.to_dense (sparse ())
  in
  match spec.meth with
  | `Lu -> (Dense.solve (dense ()) b, 0)
  | `Cg -> Sparse.conjugate_gradient (sparse ()) b
  | `Gs -> Sparse.gauss_seidel (sparse ()) b

let run text =
  match
    let spec = parse_spec text in
    solve spec
  with
  | x, iters ->
    let lines =
      Array.to_list (Array.mapi (fun i v -> Printf.sprintf "x%d = %.10g" i v) x)
    in
    let lines =
      if iters > 0 then lines @ [ Printf.sprintf "# %d iteration(s)" iters ]
      else lines
    in
    String.concat "\n" lines
  | exception Failure msg -> "error: " ^ msg
  | exception Invalid_argument msg -> "error: " ^ msg
