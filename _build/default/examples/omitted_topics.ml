(* The topics the MOOC had to omit for schedule (Section 2.1) and that the
   Fig. 11 survey asked for - implemented here as extensions and shown in
   one run: stuck-at ATPG, KL vs FM partitioning, left-edge channel
   routing, and don't-care-based node simplification. *)

module Network = Vc_network.Network
module Expr = Vc_cube.Expr

let () =
  print_endline "=== Test: stuck-at ATPG on a carry cell ===";
  let net =
    Network.of_exprs ~inputs:[ "a"; "b"; "cin" ]
      [
        ("cout", Expr.parse "a b + a cin + b cin");
        ("s", Expr.parse "a ^ b ^ cin");
      ]
  in
  let report = Vc_network.Atpg.generate_all net in
  Printf.printf "faults %d, detected %d, redundant %d, coverage %.0f%%\n"
    report.Vc_network.Atpg.total report.Vc_network.Atpg.detected
    report.Vc_network.Atpg.redundant
    (100.0 *. Vc_network.Atpg.coverage report);
  let compacted = Vc_network.Atpg.compact net report in
  Printf.printf "test set: %d vectors, compacted to %d\n"
    (List.length report.Vc_network.Atpg.vectors)
    (List.length compacted);
  List.iteri
    (fun i v ->
      Printf.printf "  vector %d: %s\n" i
        (String.concat " "
           (List.map (fun (n, b) -> Printf.sprintf "%s=%d" n (if b then 1 else 0)) v)))
    compacted;

  print_endline "\n=== Partitioning: Kernighan-Lin vs Fiduccia-Mattheyses ===";
  let pnet =
    Vc_place.Netgen.generate ~seed:9
      { Vc_place.Netgen.p_name = "part"; cells = 150; nets = 220; pads = 12; avg_pins = 2.7 }
  in
  let kl = Vc_place.Kl.bipartition ~seed:3 pnet in
  let fm = Vc_place.Fm.bipartition ~seed:3 pnet in
  let random = Array.init pnet.Vc_place.Pnet.num_cells (fun i -> i mod 2 = 0) in
  Printf.printf "random split cut %d | KL cut %d (%d passes) | FM cut %d (%d passes)\n"
    (Vc_place.Fm.cut_size pnet random)
    kl.Vc_place.Kl.cut kl.Vc_place.Kl.passes fm.Vc_place.Fm.cut fm.Vc_place.Fm.passes;

  print_endline "\n=== Channel routing: left-edge with vertical constraints ===";
  let problem =
    Vc_route.Channel.parse
      "top    1 0 2 3 0 4 0 2\nbottom 0 1 0 2 3 0 4 0\n"
  in
  Printf.printf "density %d\n" (Vc_route.Channel.density problem);
  (match Vc_route.Channel.route problem with
  | Ok a ->
    Printf.printf "routed in %d tracks\n" a.Vc_route.Channel.num_tracks;
    print_string (Vc_route.Channel.render problem a)
  | Error e -> Printf.printf "unroutable: %s\n" e);

  print_endline "\n=== Don't cares: SDC-aware simplification ===";
  (* a one-hot decoder feeding a node: half its input space is unreachable *)
  let t = Network.create ~inputs:[ "s" ] ~outputs:[ "f" ] () in
  Network.add_node t ~name:"hot0" ~fanins:[ "s" ]
    ~func:(Vc_cube.Cover.of_strings 1 [ "0" ]);
  Network.add_node t ~name:"hot1" ~fanins:[ "s" ]
    ~func:(Vc_cube.Cover.of_strings 1 [ "1" ]);
  Network.add_node t ~name:"f" ~fanins:[ "hot0"; "hot1" ]
    ~func:(Vc_cube.Cover.of_strings 2 [ "10"; "01" ]);
  let before = Network.literal_count t in
  let saved = Vc_multilevel.Dc.simplify t in
  Printf.printf "decoder consumer: %d literals, SDC simplify saved %d\n" before saved;
  (match Vc_multilevel.Dc.node_dc_cover t "f" with
  | Some dc ->
    Printf.printf "unreachable fanin patterns of f: %s\n"
      (String.concat ", " (Vc_cube.Cover.to_strings dc))
  | None -> ());

  print_endline "\n=== Sequential: FSM minimization and encoding ===";
  let machine =
    Vc_network.Fsm.parse
      "# a parity detector with two copies of the odd state\n\
       .start even\n\
       even zero even 0\n\
       even one odd_a 1\n\
       odd_a zero odd_b 1\n\
       odd_a one even 0\n\
       odd_b zero odd_a 1\n\
       odd_b one even 0\n\
       .end\n"
  in
  let reduced, mapping = Vc_network.Fsm.minimize machine in
  Printf.printf "states %d -> %d (equivalent: %b)\n"
    (List.length (Vc_network.Fsm.states machine))
    (List.length (Vc_network.Fsm.states reduced))
    (Vc_network.Fsm.equivalent machine reduced);
  List.iter (fun (s, r) -> Printf.printf "  %s -> %s\n" s r) mapping;
  let logic = Vc_network.Fsm.encode reduced in
  Printf.printf "encoded next-state/output logic: %d nodes, %d literals\n"
    (Network.node_count logic) (Network.literal_count logic);

  print_endline "\n=== Geometry: scanline DRC on a routed layout ===";
  let problem =
    Vc_route.Router.parse_problem
      "grid 14 14\nnet a 1 1 12 1\nnet b 1 3 12 3\nnet c 6 0 6 13\nnet d 1 6 12 12\n"
  in
  let routed = Vc_route.Router.route problem in
  let violations, rects = Vc_route.Geom.drc_check routed in
  Printf.printf "routed %d/%d nets; %d wire strips extracted; %d DRC violations\n"
    routed.Vc_route.Router.completed routed.Vc_route.Router.total
    (List.length rects) (List.length violations);
  Printf.printf "metal area (union of strips): %d cells\n"
    (Vc_route.Geom.union_area rects);

  print_endline "\n=== Simulation: event-driven with delays (hazards!) ===";
  let hazard_net =
    Network.of_exprs ~inputs:[ "a"; "b"; "c" ]
      [ ("f", Expr.parse "a b + !a c") ]
  in
  let mapping =
    Vc_techmap.Map.map_network (Vc_techmap.Cell_lib.standard ()) hazard_net
  in
  let out =
    Vc_timing.Eventsim.simulate mapping
      [
        ("a", [ (0.0, true); (10.0, false) ]);
        ("b", [ (0.0, true) ]);
        ("c", [ (0.0, true) ]);
      ]
  in
  let f = List.assoc "f" out in
  Printf.printf "f = a b + a' c with b=c=1, a falling at t=10:\n";
  List.iter (fun (t, v) -> Printf.printf "  t=%5.2f  f=%b\n" t v) f;
  Printf.printf
    "functionally f never moves; real delays produce %d glitch transition(s)\n"
    (Vc_timing.Eventsim.glitches f)
