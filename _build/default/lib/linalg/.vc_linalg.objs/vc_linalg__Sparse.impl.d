lib/linalg/sparse.ml: Array Dense Hashtbl List Option
