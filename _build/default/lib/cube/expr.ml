type t =
  | Const of bool
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type token =
  | Tok_var of string
  | Tok_const of bool
  | Tok_not
  | Tok_post_not
  | Tok_and
  | Tok_or
  | Tok_xor
  | Tok_lparen
  | Tok_rparen

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize s =
  let n = String.length s in
  let rec ident i j = if j < n && is_ident_char s.[j] then ident i (j + 1) else j in
  let rec loop i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> loop (i + 1) acc
      | '!' | '~' -> loop (i + 1) (Tok_not :: acc)
      | '\'' -> loop (i + 1) (Tok_post_not :: acc)
      | '&' | '*' -> loop (i + 1) (Tok_and :: acc)
      | '|' | '+' -> loop (i + 1) (Tok_or :: acc)
      | '^' -> loop (i + 1) (Tok_xor :: acc)
      | '(' -> loop (i + 1) (Tok_lparen :: acc)
      | ')' -> loop (i + 1) (Tok_rparen :: acc)
      | '0' -> loop (i + 1) (Tok_const false :: acc)
      | '1' -> loop (i + 1) (Tok_const true :: acc)
      | c when is_ident_start c ->
        let j = ident i (i + 1) in
        loop j (Tok_var (String.sub s i (j - i)) :: acc)
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %C" c))
  in
  loop 0 []

(* Recursive descent; each level returns (expr, remaining tokens). *)
let parse s =
  let rec p_or toks =
    let lhs, toks = p_xor toks in
    match toks with
    | Tok_or :: rest ->
      let rhs, toks = p_or rest in
      (Or (lhs, rhs), toks)
    | _ -> (lhs, toks)
  and p_xor toks =
    let lhs, toks = p_and toks in
    match toks with
    | Tok_xor :: rest ->
      let rhs, toks = p_xor rest in
      (Xor (lhs, rhs), toks)
    | _ -> (lhs, toks)
  and p_and toks =
    let lhs, toks = p_unary toks in
    match toks with
    | Tok_and :: rest ->
      let rhs, toks = p_and rest in
      (And (lhs, rhs), toks)
    (* juxtaposition: [a b] and [a (b|c)] mean AND *)
    | (Tok_var _ | Tok_const _ | Tok_lparen | Tok_not) :: _ ->
      let rhs, toks = p_and toks in
      (And (lhs, rhs), toks)
    | _ -> (lhs, toks)
  and p_unary toks =
    match toks with
    | Tok_not :: rest ->
      let e, toks = p_unary rest in
      (Not e, toks)
    | _ -> p_atom toks
  and p_atom toks =
    let base, toks =
      match toks with
      | Tok_var v :: rest -> (Var v, rest)
      | Tok_const b :: rest -> (Const b, rest)
      | Tok_lparen :: rest -> begin
        let e, toks = p_or rest in
        match toks with
        | Tok_rparen :: rest -> (e, rest)
        | _ -> raise (Parse_error "missing closing parenthesis")
      end
      | _ -> raise (Parse_error "expected variable, constant or '('")
    in
    p_postfix base toks
  and p_postfix e toks =
    match toks with
    | Tok_post_not :: rest -> p_postfix (Not e) rest
    | _ -> (e, toks)
  in
  match tokenize s with
  | [] -> raise (Parse_error "empty expression")
  | toks -> begin
    let e, rest = p_or toks in
    match rest with
    | [] -> e
    | _ -> raise (Parse_error "trailing tokens after expression")
  end

let rec to_string = function
  | Const true -> "1"
  | Const false -> "0"
  | Var v -> v
  | Not e -> "!" ^ atom_string e
  | And (a, b) -> Printf.sprintf "(%s & %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (to_string a) (to_string b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (to_string a) (to_string b)

and atom_string e =
  match e with
  | Const _ | Var _ -> to_string e
  | Not _ | And _ | Or _ | Xor _ -> "(" ^ to_string e ^ ")"

(* ------------------------------------------------------------------ *)
(* Semantics                                                           *)
(* ------------------------------------------------------------------ *)

let vars e =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec visit = function
    | Const _ -> ()
    | Var v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out := v :: !out
      end
    | Not a -> visit a
    | And (a, b) | Or (a, b) | Xor (a, b) ->
      visit a;
      visit b
  in
  visit e;
  List.rev !out

let rec eval env = function
  | Const b -> b
  | Var v -> env v
  | Not a -> not (eval env a)
  | And (a, b) -> eval env a && eval env b
  | Or (a, b) -> eval env a || eval env b
  | Xor (a, b) -> eval env a <> eval env b

let truth_table order e =
  let n = List.length order in
  if n > 20 then invalid_arg "Expr.truth_table: too many variables";
  let missing = List.filter (fun v -> not (List.mem v order)) (vars e) in
  if missing <> [] then
    invalid_arg
      ("Expr.truth_table: variable not in order: " ^ List.hd missing);
  let index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace index v i) order;
  let rows = 1 lsl n in
  Array.init rows (fun row ->
      let env v =
        let i = Hashtbl.find index v in
        (* MSB-first: variable 0 of [order] is the highest bit *)
        row land (1 lsl (n - 1 - i)) <> 0
      in
      eval env e)

let equivalent a b =
  let union =
    vars a @ List.filter (fun v -> not (List.mem v (vars a))) (vars b)
  in
  truth_table union a = truth_table union b

let rec simplify e =
  match e with
  | Const _ | Var _ -> e
  | Not a -> begin
    match simplify a with
    | Const b -> Const (not b)
    | Not inner -> inner
    | a' -> Not a'
  end
  | And (a, b) -> begin
    match (simplify a, simplify b) with
    | Const false, _ | _, Const false -> Const false
    | Const true, x | x, Const true -> x
    | a', b' when a' = b' -> a'
    | a', b' -> And (a', b')
  end
  | Or (a, b) -> begin
    match (simplify a, simplify b) with
    | Const true, _ | _, Const true -> Const true
    | Const false, x | x, Const false -> x
    | a', b' when a' = b' -> a'
    | a', b' -> Or (a', b')
  end
  | Xor (a, b) -> begin
    match (simplify a, simplify b) with
    | Const false, x | x, Const false -> x
    | Const true, x | x, Const true -> simplify (Not x)
    | a', b' when a' = b' -> Const false
    | a', b' -> Xor (a', b')
  end

let cofactor x v e =
  let rec subst = function
    | Const b -> Const b
    | Var y -> if y = x then Const v else Var y
    | Not a -> Not (subst a)
    | And (a, b) -> And (subst a, subst b)
    | Or (a, b) -> Or (subst a, subst b)
    | Xor (a, b) -> Xor (subst a, subst b)
  in
  simplify (subst e)

let boolean_difference x e =
  simplify (Xor (cofactor x true e, cofactor x false e))

let exists x e = simplify (Or (cofactor x true e, cofactor x false e))

let forall x e = simplify (And (cofactor x true e, cofactor x false e))

let of_minterms order ms =
  let n = List.length order in
  let order = Array.of_list order in
  let minterm m =
    if m < 0 || m >= 1 lsl n then
      invalid_arg "Expr.of_minterms: minterm out of range";
    let lit i =
      let bit = m land (1 lsl (n - 1 - i)) <> 0 in
      if bit then Var order.(i) else Not (Var order.(i))
    in
    let rec conj i = if i = n - 1 then lit i else And (lit i, conj (i + 1)) in
    if n = 0 then Const true else conj 0
  in
  match ms with
  | [] -> Const false
  | m :: rest -> List.fold_left (fun acc m -> Or (acc, minterm m)) (minterm m) rest
