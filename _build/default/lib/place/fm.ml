type result = {
  side : bool array;
  cut : int;
  passes : int;
}

let net_cells (net : Pnet.net) =
  List.filter_map
    (fun pin -> match pin with Pnet.Cell c -> Some c | Pnet.Pad _ -> None)
    net.Pnet.pins
  |> List.sort_uniq compare

let cut_size t side =
  let cut = ref 0 in
  Array.iter
    (fun net ->
      let cells = net_cells net in
      let left = List.exists (fun c -> not side.(c)) cells in
      let right = List.exists (fun c -> side.(c)) cells in
      if left && right then incr cut)
    t.Pnet.nets;
  !cut

(* One FM pass: move every cell once (best-gain first, balance allowing),
   then roll back to the best prefix.  Returns the cut improvement. *)
let fm_pass t side balance =
  let n = t.Pnet.num_cells in
  let nets = Array.map net_cells t.Pnet.nets in
  (* pin counts per net per side *)
  let count = Array.map (fun cells ->
      let l = ref 0 and r = ref 0 in
      List.iter (fun c -> if side.(c) then incr r else incr l) cells;
      (ref !l, ref !r)) nets
  in
  let nets_of_cell = Array.make n [] in
  Array.iteri
    (fun ni cells ->
      List.iter (fun c -> nets_of_cell.(c) <- ni :: nets_of_cell.(c)) cells)
    nets;
  let gain = Array.make n 0 in
  let compute_gain c =
    let g = ref 0 in
    List.iter
      (fun ni ->
        let l, r = count.(ni) in
        let from_count = if side.(c) then !r else !l in
        let to_count = if side.(c) then !l else !r in
        if from_count = 1 then incr g;
        if to_count = 0 then decr g)
      nets_of_cell.(c);
    gain.(c) <- !g
  in
  for c = 0 to n - 1 do
    compute_gain c
  done;
  let locked = Array.make n false in
  let left_size = ref 0 in
  Array.iter (fun s -> if not s then incr left_size) side;
  let lo = int_of_float (float_of_int n *. (0.5 -. balance)) in
  let hi = n - lo in
  let moves = ref [] in
  let cumulative = ref 0 in
  let best_prefix = ref 0 and best_value = ref 0 in
  let move_count = ref 0 in
  let find_best () =
    let best = ref (-1) in
    for c = 0 to n - 1 do
      if not locked.(c) then begin
        (* balance check for moving c to the other side *)
        let new_left = if side.(c) then !left_size + 1 else !left_size - 1 in
        if new_left >= lo && new_left <= hi then
          if !best < 0 || gain.(c) > gain.(!best) then best := c
      end
    done;
    !best
  in
  let apply c =
    (* update net counts and neighbour gains using the standard FM rules,
       here recomputed locally: course-scale n makes this affordable *)
    let from_side = side.(c) in
    List.iter
      (fun ni ->
        let l, r = count.(ni) in
        if from_side then begin
          decr r;
          incr l
        end
        else begin
          decr l;
          incr r
        end)
      nets_of_cell.(c);
    side.(c) <- not from_side;
    if from_side then incr left_size else decr left_size;
    locked.(c) <- true;
    (* recompute gains of unlocked neighbours *)
    List.iter
      (fun ni ->
        List.iter
          (fun d -> if not locked.(d) then compute_gain d)
          nets.(ni))
      nets_of_cell.(c)
  in
  let continue_ = ref true in
  while !continue_ do
    let c = find_best () in
    if c < 0 then continue_ := false
    else begin
      cumulative := !cumulative + gain.(c);
      apply c;
      incr move_count;
      moves := c :: !moves;
      if !cumulative > !best_value then begin
        best_value := !cumulative;
        best_prefix := !move_count
      end
    end
  done;
  (* roll back moves beyond the best prefix *)
  let all_moves = List.rev !moves in
  List.iteri
    (fun i c -> if i >= !best_prefix then side.(c) <- not side.(c))
    all_moves;
  !best_value

let bipartition ?(seed = 1) ?(balance = 0.1) ?(max_passes = 20) t =
  let n = t.Pnet.num_cells in
  let rng = Vc_util.Rng.create seed in
  let side = Array.init n (fun i -> i mod 2 = 1) in
  Vc_util.Rng.shuffle rng side;
  let passes = ref 0 in
  let improved = ref true in
  while !improved && !passes < max_passes do
    incr passes;
    improved := fm_pass t side balance > 0
  done;
  { side; cut = cut_size t side; passes = !passes }
