(** The Fig. 4 architecture: tool portals that consume ASCII text and
    produce ASCII text, with per-participant run history and a runaway
    guard. The five deployed tools mirror the paper's list - kbdd,
    espresso, SIS, miniSAT, and the custom Ax=b solver - each backed by
    this repository's own implementation. *)

type tool = {
  tool_name : string;
  description : string;
  max_input_lines : int;  (** Runaway guard: larger uploads are rejected. *)
  execute : string -> string;
}

val kbdd : tool
(** BDD calculator scripts ({!Vc_bdd.Bdd_script}). *)

val espresso : tool
(** PLA in, minimized PLA out ({!Vc_two_level.Espresso}). *)

val sis : tool
(** Input is a BLIF model, then a line containing only [%script], then
    SIS commands ({!Vc_multilevel.Script}); output is the log and the
    optimized BLIF. *)

val minisat : tool
(** DIMACS in; "SATISFIABLE" plus a model line, or "UNSATISFIABLE". *)

val axb : tool
(** Linear systems ({!Vc_linalg.Axb}). *)

val all_tools : tool list

type session
(** One participant's portal state: private run history per tool. *)

val create_session : unit -> session

val submit : session -> tool -> string -> string
(** Run the tool on the uploaded text (never raises; errors come back as
    ["error: ..."] text) and append to the tool's history. *)

val history : session -> tool -> (string * string) list
(** (input, output) pairs, oldest first - the "older outputs available by
    scrolling" behaviour. *)

val find_tool : string -> tool option
