lib/route/geom.ml: Array Grid List Router
