(** Classic recursive DPLL: unit propagation, pure-literal elimination and
    chronological backtracking - the course's "before clause learning"
    baseline that the CDCL benches compare against. *)

type stats = { decisions : int; propagations : int }

val solve : ?max_decisions:int -> Cnf.t -> Solver.result * stats
(** [Unknown] only when [max_decisions] is exhausted. *)

val is_sat : Cnf.t -> bool
