lib/bdd/bdd_script.ml: Bdd Hashtbl List Printf String Vc_cube Vc_util
