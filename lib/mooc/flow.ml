module Map = Vc_techmap.Map
module Subject = Vc_techmap.Subject
module Pnet = Vc_place.Pnet
module Router = Vc_route.Router
module Grid = Vc_route.Grid

type options = {
  mode : Map.mode;
  synth_script : string;
  seed : int;
  cell_spacing : int;
}

let default_options =
  {
    mode = Map.Min_area;
    synth_script = "sweep\nsimplify\nfx\nresub\nsweep\neliminate 0\nsimplify\nsweep";
    seed = 1;
    cell_spacing = 6;
  }

type stage_qor = {
  sq_stage : string;
  sq_latency_s : float;
  sq_metrics : (string * float) list;
}

type report = {
  network : Vc_network.Network.t;
  literals_before : int;
  literals_after : int;
  mapping : Map.mapping;
  pnet : Pnet.t;
  placement : Pnet.placement;
  hpwl : float;
  routing : Router.result;
  gate_delay : float;
  total_delay : float;
  equivalent : bool;
  stages : stage_qor list;
}

(* ------------------------------------------------------------------ *)
(* mapped netlist -> placement netlist                                  *)
(* ------------------------------------------------------------------ *)

let pnet_of_mapping (m : Map.mapping) =
  let subject = m.Map.subject in
  let gates = Array.of_list m.Map.gates in
  let cell_of_output = Hashtbl.create 64 in
  Array.iteri
    (fun ci (g : Map.gate) -> Hashtbl.replace cell_of_output g.Map.g_output ci)
    gates;
  let cell_names =
    Array.map (fun (g : Map.gate) -> Printf.sprintf "g%d" g.Map.g_output) gates
  in
  (* pads: inputs on the left edge, outputs on the right *)
  let n_cells = Array.length gates in
  let side = ceil (sqrt (float_of_int (max 1 n_cells))) in
  let inputs = subject.Subject.inputs in
  let outputs = subject.Subject.outputs in
  let spread count i =
    side *. (float_of_int i +. 1.0) /. (float_of_int count +. 1.0)
  in
  let in_pads =
    List.mapi
      (fun i (name, _) -> (name, 0.0, spread (List.length inputs) i))
      inputs
  in
  let out_pads =
    List.mapi
      (fun i (name, _) -> ("out:" ^ name, side, spread (List.length outputs) i))
      outputs
  in
  let pads = Array.of_list (in_pads @ out_pads) in
  let pad_index = Hashtbl.create 16 in
  Array.iteri (fun i (name, _, _) -> Hashtbl.replace pad_index name i) pads;
  (* nets: one per subject signal that is a gate output or a primary input *)
  let users = Hashtbl.create 64 in
  Array.iteri
    (fun ci (g : Map.gate) ->
      List.iter
        (fun input ->
          Hashtbl.replace users input
            (ci :: Option.value ~default:[] (Hashtbl.find_opt users input)))
        g.Map.g_inputs)
    gates;
  let nets = ref [] in
  let add_net name driver_pin user_pins =
    match user_pins with
    | [] -> ()
    | _ -> nets := { Pnet.net_name = name; pins = driver_pin :: user_pins } :: !nets
  in
  (* gate-output signals *)
  Array.iteri
    (fun ci (g : Map.gate) ->
      let id = g.Map.g_output in
      let user_cells =
        List.map (fun c -> Pnet.Cell c)
          (Option.value ~default:[] (Hashtbl.find_opt users id))
      in
      let out_pad_pins =
        List.filter_map
          (fun (oname, oid) ->
            if oid = id then
              Option.map (fun i -> Pnet.Pad i)
                (Hashtbl.find_opt pad_index ("out:" ^ oname))
            else None)
          outputs
      in
      add_net (Printf.sprintf "n%d" id) (Pnet.Cell ci)
        (user_cells @ out_pad_pins))
    gates;
  (* primary-input signals *)
  List.iter
    (fun (name, id) ->
      let user_cells =
        List.map (fun c -> Pnet.Cell c)
          (Option.value ~default:[] (Hashtbl.find_opt users id))
      in
      let out_pad_pins =
        (* an output directly tied to an input *)
        List.filter_map
          (fun (oname, oid) ->
            if oid = id then
              Option.map (fun i -> Pnet.Pad i)
                (Hashtbl.find_opt pad_index ("out:" ^ oname))
            else None)
          outputs
      in
      match Hashtbl.find_opt pad_index name with
      | Some pi -> add_net ("in:" ^ name) (Pnet.Pad pi) (user_cells @ out_pad_pins)
      | None -> ())
    inputs;
  Pnet.make ~name:"mapped" ~cell_names ~pads
    ~nets:(Array.of_list (List.rev !nets))
    ~width:side ~height:side ()

(* ------------------------------------------------------------------ *)
(* placement -> routing problem                                         *)
(* ------------------------------------------------------------------ *)

(* Each placement unit becomes [spacing] routing tracks; each net pin gets
   its own grid cell near its cell/pad so pins never collide. *)
let routing_problem_of (pnet : Pnet.t) (p : Pnet.placement) spacing =
  let gw = (int_of_float pnet.Pnet.width * spacing) + (2 * spacing) in
  let gh = (int_of_float pnet.Pnet.height * spacing) + (2 * spacing) in
  let base (x, y) =
    let gx = spacing + int_of_float (Float.round (x *. float_of_int spacing)) in
    let gy = spacing + int_of_float (Float.round (y *. float_of_int spacing)) in
    (max 0 (min (gw - 1) gx), max 0 (min (gh - 1) gy))
  in
  (* distinct pin offsets around a location, claimed in order per anchor;
     spaced two tracks apart so reserved pins never wall each other in *)
  let offsets =
    [ (0, 0); (2, 0); (-2, 0); (0, 2); (0, -2); (2, 2); (-2, -2); (2, -2);
      (-2, 2); (3, 0); (-3, 0); (0, 3); (0, -3); (3, 2); (-3, -2); (2, 3) ]
  in
  let taken = Hashtbl.create 256 in
  let next_slot = Hashtbl.create 256 in
  let pin_for anchor =
    let bx, by = base anchor in
    let start = Option.value ~default:0 (Hashtbl.find_opt next_slot (bx, by)) in
    let rec find k =
      if k >= List.length offsets then (bx, by) (* saturated: reuse base *)
      else begin
        let dx, dy = List.nth offsets k in
        let cand = (bx + dx, by + dy) in
        let cx, cy = cand in
        if cx >= 0 && cx < gw && cy >= 0 && cy < gh && not (Hashtbl.mem taken cand)
        then begin
          Hashtbl.replace taken cand ();
          Hashtbl.replace next_slot (bx, by) (k + 1);
          cand
        end
        else find (k + 1)
      end
    in
    find start
  in
  let position pin =
    match pin with
    | Pnet.Cell c -> (p.Pnet.xs.(c), p.Pnet.ys.(c))
    | Pnet.Pad i ->
      let _, x, y = pnet.Pnet.pads.(i) in
      (x, y)
  in
  let net_specs =
    Array.to_list pnet.Pnet.nets
    |> List.map (fun (net : Pnet.net) ->
           {
             Router.rn_name = net.Pnet.net_name;
             rn_pins = List.map (fun pin -> pin_for (position pin)) net.Pnet.pins;
           })
  in
  {
    Router.grid_width = gw;
    grid_height = gh;
    cost_params = Grid.default_costs;
    obstacles = [];
    net_specs;
  }

(* ------------------------------------------------------------------ *)
(* timing with wire delays                                              *)
(* ------------------------------------------------------------------ *)

let wire_delays (m : Map.mapping) (routing : Router.result) =
  (* per net name: worst Elmore sink delay, in the cell-delay unit (ns);
     the raw RC product is in ohm*fF = fs, so scale to ns-ish via 1e-3
     to make wires visible next to ~0.5ns gates at course scale *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Router.routed) ->
      if r.Router.r_ok && r.Router.r_paths <> [] then begin
        match Vc_timing.Elmore.of_route r.Router.r_paths with
        | tree ->
          let worst =
            List.fold_left
              (fun acc (_, d) -> max acc d)
              0.0
              (Vc_timing.Elmore.delays ~driver_resistance:50.0 tree)
          in
          Hashtbl.replace tbl r.Router.r_name (worst *. 1e-3)
        | exception Invalid_argument _ -> ()
      end)
    routing.Router.routed;
  ignore m;
  tbl

let timing_with_wires (m : Map.mapping) wire_tbl =
  let subject = m.Map.subject in
  let t = Vc_timing.Tgraph.create () in
  let name_of id =
    match subject.Subject.nodes.(id) with
    | Subject.S_input s -> s
    | Subject.S_nand _ | Subject.S_inv _ -> "n" ^ string_of_int id
  in
  let wire_of id =
    (* the flow names the net after the driving signal *)
    let net_name =
      match subject.Subject.nodes.(id) with
      | Subject.S_input s -> "in:" ^ s
      | Subject.S_nand _ | Subject.S_inv _ -> "n" ^ string_of_int id
    in
    Option.value ~default:0.0 (Hashtbl.find_opt wire_tbl net_name)
  in
  List.iter
    (fun (g : Map.gate) ->
      List.iter
        (fun input ->
          Vc_timing.Tgraph.add_edge t ~src:(name_of input)
            ~dst:(name_of g.Map.g_output)
            ~delay:(g.Map.g_cell.Vc_techmap.Cell_lib.delay +. wire_of input))
        g.Map.g_inputs)
    m.Map.gates;
  Vc_timing.Tgraph.analyze t

(* ------------------------------------------------------------------ *)
(* the flow                                                             *)
(* ------------------------------------------------------------------ *)

(* Each stage runs bracketed by journal begin/end events; the end event
   and the returned QoR entry carry the stage's headline metrics, and the
   latency also lands on the "flow.<stage>" telemetry timer. *)
let run_stage name f =
  let module J = Vc_util.Journal in
  Vc_util.Telemetry.define_histogram ("flow." ^ name);
  J.emit ~component:"flow" ~attrs:[ ("stage", name) ] "stage.begin";
  let t0 = Vc_util.Telemetry.now () in
  match f () with
  | v, metrics ->
    let dt = Float.max 0.0 (Vc_util.Telemetry.now () -. t0) in
    Vc_util.Telemetry.observe ("flow." ^ name) dt;
    J.emit ~component:"flow"
      ~attrs:
        (("stage", name)
        :: ("latency_s", Printf.sprintf "%.6f" dt)
        :: List.map (fun (k, v) -> (k, Printf.sprintf "%g" v)) metrics)
      "stage.end";
    (v, { sq_stage = name; sq_latency_s = dt; sq_metrics = metrics })
  | exception e ->
    J.emit ~severity:J.Error ~component:"flow"
      ~attrs:[ ("stage", name); ("error", Printexc.to_string e) ]
      "stage.error";
    raise e

let run ?(options = default_options) input_network =
  (match Vc_network.Network.check input_network with
  | Ok _ -> ()
  | Error msg -> failwith ("Flow.run: " ^ msg));
  let (network, literals_before, literals_after, equivalent), synth_qor =
    run_stage "synthesis" (fun () ->
        let literals_before = Vc_network.Network.literal_count input_network in
        let synth = Vc_multilevel.Script.run input_network options.synth_script in
        let network = synth.Vc_multilevel.Script.network in
        let literals_after = Vc_network.Network.literal_count network in
        let equivalent = Vc_network.Equiv.equivalent input_network network in
        ( (network, literals_before, literals_after, equivalent),
          [
            ("literals_before", float_of_int literals_before);
            ("literals_after", float_of_int literals_after);
            ("equivalent", if equivalent then 1.0 else 0.0);
          ] ))
  in
  let mapping, map_qor =
    run_stage "mapping" (fun () ->
        let mapping =
          Map.map_network ~mode:options.mode
            (Vc_techmap.Cell_lib.standard ())
            network
        in
        ( mapping,
          [
            ("gates", float_of_int (Map.gate_count mapping));
            ("area", mapping.Map.area);
            ("gate_delay", mapping.Map.delay);
          ] ))
  in
  let (pnet, placement, hpwl), place_qor =
    run_stage "placement" (fun () ->
        let pnet = pnet_of_mapping mapping in
        let qp = Vc_place.Quadratic.place pnet in
        let legal =
          Vc_place.Legalize.to_grid pnet qp.Vc_place.Quadratic.placement
        in
        let placement, _ = Vc_place.Legalize.refine pnet legal in
        let hpwl = Pnet.hpwl pnet placement in
        ( (pnet, placement, hpwl),
          [ ("cells", float_of_int pnet.Pnet.num_cells); ("hpwl", hpwl) ] ))
  in
  let routing, route_qor =
    run_stage "routing" (fun () ->
        let problem = routing_problem_of pnet placement options.cell_spacing in
        let routing = Router.route ~rip_up_passes:5 problem in
        ( routing,
          [
            ("nets_total", float_of_int routing.Router.total);
            ("nets_routed", float_of_int routing.Router.completed);
            ( "overflow",
              float_of_int (routing.Router.total - routing.Router.completed) );
            ("wirelength", float_of_int routing.Router.wirelength);
            ("vias", float_of_int routing.Router.vias);
          ] ))
  in
  let total_delay, timing_qor =
    run_stage "timing" (fun () ->
        let wire_tbl = wire_delays mapping routing in
        let timing = timing_with_wires mapping wire_tbl in
        let total_delay = timing.Vc_timing.Tgraph.worst_arrival in
        ( total_delay,
          [ ("gate_delay", mapping.Map.delay); ("total_delay", total_delay) ]
        ))
  in
  {
    network;
    literals_before;
    literals_after;
    mapping;
    pnet;
    placement;
    hpwl;
    routing;
    gate_delay = mapping.Map.delay;
    total_delay;
    equivalent;
    stages = [ synth_qor; map_qor; place_qor; route_qor; timing_qor ];
  }

let qor_to_json ?design r =
  let module Json = Vc_util.Json in
  let stage s =
    Json.obj
      [
        ("stage", Json.str s.sq_stage);
        ("latency_s", Json.num s.sq_latency_s);
        ( "metrics",
          Json.obj (List.map (fun (k, v) -> (k, Json.num v)) s.sq_metrics) );
      ]
  in
  let total =
    List.fold_left (fun acc s -> acc +. s.sq_latency_s) 0.0 r.stages
  in
  Json.obj
    ((match design with
     | Some d -> [ ("design", Json.str d) ]
     | None -> [])
    @ [
        ("stages", Json.arr (List.map stage r.stages));
        ("total_latency_s", Json.num total);
      ])

let report_to_string r =
  String.concat "\n"
    [
      Printf.sprintf "synthesis:  %d -> %d literals%s" r.literals_before
        r.literals_after
        (if r.equivalent then " (verified equivalent)" else " (NOT EQUIVALENT!)");
      Printf.sprintf "mapping:    %d gates, area %.1f, gate delay %.2f"
        (Map.gate_count r.mapping) r.mapping.Map.area r.gate_delay;
      Printf.sprintf "placement:  %d cells, HPWL %.1f" r.pnet.Pnet.num_cells
        r.hpwl;
      Printf.sprintf "routing:    %d/%d nets, wirelength %d, vias %d"
        r.routing.Router.completed r.routing.Router.total
        r.routing.Router.wirelength r.routing.Router.vias;
      Printf.sprintf "timing:     %.2f gate-only, %.2f with Elmore wires"
        r.gate_delay r.total_delay;
      "";
    ]
