(* Single-threaded HTTP/1.1 exporter over the stdlib Unix socket API.
   One connection at a time, Connection: close - a scrape is a few KB of
   text, so the simple loop keeps up with any sane scrape interval. *)

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  metrics : unit -> string;
  on_request : string -> unit;
  mutable stopped : bool;
}

let port t = t.bound_port

(* A scraper that hangs up mid-response turns our write into SIGPIPE,
   which would kill the process; ignore it and let write raise EPIPE. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

let start ?(addr = "127.0.0.1") ?(announce = true) ?(on_request = ignore)
    ~metrics ~port () =
  ignore_sigpipe ();
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string addr, port));
     Unix.listen sock 16
   with
  | () -> ()
  | exception e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  if announce then
    Printf.eprintf "metrics: serving http://%s:%d/metrics\n%!" addr bound_port;
  { sock; bound_port; metrics; on_request; stopped = false }

(* ------------------------------------------------------------------ *)
(* request/response                                                    *)
(* ------------------------------------------------------------------ *)

(* Read until the end of the request head (blank line) or a size cap;
   we never read a body - both routes are GET. *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec loop () =
    if Buffer.length buf > 8192 then Buffer.contents buf
    else begin
      let n =
        try Unix.read fd chunk 0 (Bytes.length chunk)
        with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
      in
      if n = 0 then Buffer.contents buf
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let has_terminator =
          let rec find i =
            i + 4 <= String.length s
            && (String.sub s i 4 = "\r\n\r\n" || find (i + 1))
          in
          String.length s >= 4
          && (find 0
             ||
             let rec find_nl i =
               i + 2 <= String.length s
               && (String.sub s i 2 = "\n\n" || find_nl (i + 1))
             in
             find_nl 0)
        in
        if has_terminator then s else loop ()
      end
    end
  in
  loop ()

let request_line head =
  match String.index_opt head '\n' with
  | None -> head
  | Some i -> String.trim (String.sub head 0 i)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      let n = Unix.write fd b off (Bytes.length b - off) in
      go (off + n)
  in
  try go 0 with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let route t line =
  match String.split_on_char ' ' line with
  | meth :: path :: _ when meth <> "GET" ->
    t.on_request path;
    response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
      "method not allowed\n"
  | "GET" :: path :: _ -> begin
    t.on_request path;
    (* strip any query string before routing *)
    let path =
      match String.index_opt path '?' with
      | Some i -> String.sub path 0 i
      | None -> path
    in
    match path with
    | "/metrics" ->
      let body =
        match t.metrics () with
        | body -> body
        | exception e ->
          Printf.sprintf "# metrics renderer failed: %s\n"
            (Printexc.to_string e)
      in
      response ~status:"200 OK"
        ~content_type:"text/plain; version=0.0.4; charset=utf-8" body
    | "/healthz" ->
      response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
    | _ ->
      response ~status:"404 Not Found" ~content_type:"text/plain"
        "not found (try /metrics or /healthz)\n"
  end
  | _ ->
    response ~status:"400 Bad Request" ~content_type:"text/plain"
      "bad request\n"

let handle_client t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let head = read_head fd in
      if head <> "" then write_all fd (route t (request_line head)))

(* ------------------------------------------------------------------ *)
(* serving loops                                                       *)
(* ------------------------------------------------------------------ *)

let accept_one t =
  match Unix.accept t.sock with
  | fd, _ ->
    (match handle_client t fd with
    | () -> ()
    | exception e ->
      Printf.eprintf "metrics: request handler failed: %s\n%!"
        (Printexc.to_string e));
    true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> false (* stopped *)
  | exception Unix.Unix_error (Unix.EINVAL, _, _) -> false (* stopped *)

let serve ?max_requests t =
  match max_requests with
  | Some n ->
    let i = ref 0 in
    while !i < n && not t.stopped do
      if accept_one t then incr i else i := n
    done
  | None ->
    let live = ref true in
    while !live && not t.stopped do
      live := accept_one t
    done

let serve_forever t =
  serve t;
  (* only reachable after stop (); behave like a clean shutdown *)
  exit 0

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
