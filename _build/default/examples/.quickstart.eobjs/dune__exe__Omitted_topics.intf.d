examples/omitted_topics.mli:
