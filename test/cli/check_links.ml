(* check_links ROOT: verify every relative markdown link resolves.

   Walks ROOT for *.md files (skipping _build, .git and _opam), extracts
   the targets of inline links [text](target), and checks that each
   relative target exists on disk, resolved against the linking file's
   directory. External links (http://, https://, mailto:) and pure
   anchors (#section) are skipped; a fragment on a relative link
   (FILE.md#section) is stripped before the existence check - anchors
   themselves are not validated.

   Exit 0 when every link resolves, 1 with one line per broken link
   otherwise. CI runs this after the build so documentation moves and
   renames cannot silently orphan cross-references. *)

let skip_dirs = [ "_build"; ".git"; "_opam"; "node_modules" ]

let rec walk dir acc =
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then
        if List.mem entry skip_dirs then acc else walk path acc
      else if Filename.check_suffix entry ".md" then path :: acc
      else acc)
    acc (Sys.readdir dir)

(* targets of [text](target) links in one line, left to right *)
let link_targets line =
  let n = String.length line in
  let rec go i acc =
    if i + 1 >= n then List.rev acc
    else if line.[i] = ']' && line.[i + 1] = '(' then
      match String.index_from_opt line (i + 2) ')' with
      | None -> List.rev acc
      | Some close ->
        let target = String.sub line (i + 2) (close - i - 2) in
        go (close + 1) (target :: acc)
    else go (i + 1) acc
  in
  go 0 []

let external_link t =
  String.starts_with ~prefix:"http://" t
  || String.starts_with ~prefix:"https://" t
  || String.starts_with ~prefix:"mailto:" t

let strip_fragment t =
  match String.index_opt t '#' with
  | Some i -> String.sub t 0 i
  | None -> t

let check_file path broken =
  let dir = Filename.dirname path in
  let ic = In_channel.open_text path in
  let in_code = ref false in
  let rec go lineno =
    match In_channel.input_line ic with
    | None -> ()
    | Some line ->
      if String.starts_with ~prefix:"```" (String.trim line) then
        in_code := not !in_code
      else if not !in_code then
        List.iter
          (fun target ->
            let target = String.trim target in
            if (not (external_link target)) && target <> "" then begin
              let file = strip_fragment target in
              if file <> "" && not (Sys.file_exists (Filename.concat dir file))
              then
                broken :=
                  Printf.sprintf "%s:%d: broken link -> %s" path lineno target
                  :: !broken
            end)
          (link_targets line);
      go (lineno + 1)
  in
  go 1;
  In_channel.close ic

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let files = List.sort compare (walk root []) in
  let broken = ref [] in
  List.iter (fun f -> check_file f broken) files;
  match List.rev !broken with
  | [] ->
    Printf.printf "check_links: %d markdown file(s), all relative links ok\n"
      (List.length files)
  | problems ->
    List.iter prerr_endline problems;
    Printf.eprintf "check_links: %d broken link(s)\n" (List.length problems);
    exit 1
