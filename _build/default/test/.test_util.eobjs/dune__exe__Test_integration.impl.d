test/test_integration.ml: Alcotest Array Helpers List Printf Vc_bdd Vc_cube Vc_mooc Vc_multilevel Vc_network Vc_place Vc_route Vc_techmap Vc_timing Vc_two_level
