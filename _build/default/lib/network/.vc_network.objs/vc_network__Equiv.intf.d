lib/network/equiv.mli: Network Vc_bdd
