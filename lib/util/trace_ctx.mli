(** Request-scoped trace context - the identity that end-to-end request
    tracing propagates from [vcload] through the [vcserve] wire protocol
    into the portal and its kernels.

    A context is a short hex {e trace id} (minted from {!Rng}, or
    accepted from a client), an optional parent id, and a mutable list
    of named {e phase} durations (queue wait, cache probe, kernel
    execution, ...) accumulated while the request is serviced. Every
    journal event on the request's path carries the id as a [trace_id]
    attribute, which is what [vcstat request] joins client and server
    journals on.

    {b Ambient propagation.} Rather than threading the context through
    every signature between the server and the kernels, the worker
    domain installs it with {!with_current} and downstream code
    ({!Portal}) reads it back with {!current} / {!ambient_attrs} /
    {!record_current_phase}. The slot is per-domain ([Domain.DLS]), so
    concurrent workers never see each other's context. *)

type t

(** {1 Minting and parsing} *)

val id_length : int
(** Length of a minted id (16 hex chars = 64 bits). *)

val scheme : string
(** Human-readable description of the deterministic minting scheme -
    [vcload] publishes this in its report header so a replay's ids can
    be re-derived after the fact. *)

val mint : Rng.t -> string
(** A fresh [id_length]-char lowercase-hex id from the generator. *)

val mint_deterministic : seed:int -> seq:int -> string
(** The id for submission [seq] of a replay seeded with [seed]:
    {!mint} over [Rng.create ((seed lsl 24) lxor seq)] (the {!scheme}).
    Pure - the same (seed, seq) always yields the same id. *)

val is_valid_id : string -> bool
(** Accept 4-64 lowercase hex chars - what the wire protocol admits as
    a [TRACE] operand. *)

val make : ?parent:string -> string -> t
(** Wrap an id (not validated) in a fresh context with no phases. *)

val of_id : ?parent:string -> string -> t option
(** {!make} after {!is_valid_id}; [None] on an invalid id. *)

val id : t -> string
val parent : t -> string option

val to_attrs : t -> (string * string) list
(** [("trace_id", id)] plus [("trace_parent", p)] when present - the
    attrs every event on the request path carries. *)

(** {1 Phases} *)

val record_phase : t -> string -> float -> unit
(** Append a named duration (clamped [>= 0]) to the context's timeline.
    Phases are recorded by the single domain servicing the request at
    that moment; the hand-offs between domains are already sequenced by
    the job's completion mutex. *)

val phases : t -> (string * float) list
(** Recorded phases, oldest first. *)

val phase_total : t -> float
(** Sum of the recorded phase durations. *)

val phase_attrs : t -> (string * string) list
(** One [("phase.<name>", "%.6f")] attr per recorded phase, oldest
    first - the shape [request.replied] journal events carry and
    [vcstat request] parses back. *)

(** {1 Ambient (per-domain) context} *)

val with_current : t -> (unit -> 'a) -> 'a
(** Install [t] as this domain's current context for the duration of
    the callback (restoring the previous one after, exceptions
    included). *)

val current : unit -> t option

val ambient_attrs : unit -> (string * string) list
(** {!to_attrs} of the current context, or [[]] outside any request. *)

val record_current_phase : string -> float -> unit
(** {!record_phase} on the current context; a no-op outside any
    request, so instrumented code needs no caller checks. *)
