(** Layout rendering: the stand-in for the course's HTML5 browser viewer.
    ASCII art for terminals and test fixtures (Fig. 6), SVG for files
    (Fig. 7). *)

val grid_ascii : Grid.t -> string
(** Both layers side by side. ['.'] free, ['#'] obstacle, [0-9a-z] net ids
    (mod 36). *)

val result_ascii : Router.result -> string

val result_svg : Router.result -> string
(** Self-contained SVG: layer 0 wires in blue, layer 1 in red, vias as
    black squares, obstacles grey. *)

val placement_svg :
  width:float -> height:float -> (float * float) array -> string
(** Dot plot of cell positions (Fig. 7 left). *)
