module Expr = Vc_cube.Expr
type state = {
  man : Bdd.man;
  defs : (string, Bdd.t) Hashtbl.t;
  mutable declared : string list; (* declaration order, reversed *)
}

let create () = { man = Bdd.create (); defs = Hashtbl.create 16; declared = [] }

let manager st = st.man

let lookup st name = Hashtbl.find_opt st.defs name

let declared_vars st = List.rev st.declared

let fail fmt = Printf.ksprintf failwith fmt

(* Build the BDD of an expression, resolving identifiers first as defined
   functions, then as declared variables. *)
let build st expr_text =
  let e =
    try Expr.parse expr_text
    with Expr.Parse_error msg -> fail "parse error: %s" msg
  in
  let rec go = function
    | Expr.Const true -> Bdd.one
    | Expr.Const false -> Bdd.zero
    | Expr.Var v -> begin
      match Hashtbl.find_opt st.defs v with
      | Some f -> f
      | None ->
        if Bdd.var_index st.man v <> None then Bdd.var st.man v
        else fail "undeclared identifier %s (declare with: boolean %s)" v v
    end
    | Expr.Not a -> Bdd.mk_not st.man (go a)
    | Expr.And (a, b) -> Bdd.mk_and st.man (go a) (go b)
    | Expr.Or (a, b) -> Bdd.mk_or st.man (go a) (go b)
    | Expr.Xor (a, b) -> Bdd.mk_xor st.man (go a) (go b)
  in
  go e

let get_fn st name =
  match Hashtbl.find_opt st.defs name with
  | Some f -> f
  | None -> fail "unknown function %s" name

let get_var st name =
  match Bdd.var_index st.man name with
  | Some i -> i
  | None -> fail "unknown variable %s" name

let assignment_to_string st assignment =
  match assignment with
  | [] -> "(any assignment)"
  | _ ->
    String.concat " "
      (List.map
         (fun (v, b) ->
           Printf.sprintf "%s=%d" (Bdd.var_name st.man v) (if b then 1 else 0))
         assignment)

let cube_strings st f =
  let cubes = Bdd.all_sat ~limit:256 st.man f in
  let lit (v, b) =
    if b then Bdd.var_name st.man v else Bdd.var_name st.man v ^ "'"
  in
  List.map
    (fun cube ->
      match cube with [] -> "1" | _ -> String.concat "." (List.map lit cube))
    cubes

let exec_line st line =
  let line = Vc_util.Tok.strip_comment ~comment:'#' line in
  match Vc_util.Tok.split_words line with
  | [] -> []
  | "boolean" :: vars ->
    if vars = [] then fail "boolean: expected variable names";
    let declare v =
      if Hashtbl.mem st.defs v then fail "%s is already a function" v;
      if Bdd.var_index st.man v = None then begin
        ignore (Bdd.var st.man v);
        st.declared <- v :: st.declared
      end
    in
    List.iter declare vars;
    [ Printf.sprintf "declared %d variable(s)" (List.length vars) ]
  | name :: "=" :: rest when rest <> [] ->
    let f = build st (String.concat " " rest) in
    Hashtbl.replace st.defs name f;
    [ Printf.sprintf "%s: %d node(s)" name (Bdd.size st.man f) ]
  | [ "print"; name ] ->
    let f = get_fn st name in
    if f = Bdd.zero then [ "0" ]
    else if f = Bdd.one then [ "1" ]
    else [ String.concat " + " (cube_strings st f) ]
  | [ "size"; name ] ->
    [ string_of_int (Bdd.size st.man (get_fn st name)) ]
  | [ "sat"; name ] -> begin
    match Bdd.any_sat st.man (get_fn st name) with
    | None -> [ "unsatisfiable" ]
    | Some a -> [ assignment_to_string st a ]
  end
  | [ "satcount"; name ] ->
    let f = get_fn st name in
    let n = List.length (declared_vars st) in
    [ Printf.sprintf "%.0f" (Bdd.sat_count st.man f ~nvars:(max n (Bdd.num_vars st.man))) ]
  | [ "tautology"; name ] ->
    [ (if get_fn st name = Bdd.one then "yes" else "no") ]
  | [ "equal"; a; b ] ->
    [ (if get_fn st a = get_fn st b then "yes" else "no") ]
  | [ "dot"; name ] ->
    String.split_on_char '\n' (Bdd.to_dot st.man ~name (get_fn st name))
  | [ "support"; name ] ->
    let vs = Bdd.support st.man (get_fn st name) in
    [ String.concat " " (List.map (Bdd.var_name st.man) vs) ]
  | [ "cofactor"; g; f; x; v ] ->
    let value =
      match v with
      | "0" -> false
      | "1" -> true
      | _ -> fail "cofactor: value must be 0 or 1"
    in
    let r = Bdd.restrict st.man (get_fn st f) ~var:(get_var st x) ~value in
    Hashtbl.replace st.defs g r;
    [ Printf.sprintf "%s: %d node(s)" g (Bdd.size st.man r) ]
  | "exists" :: g :: f :: (_ :: _ as vars) ->
    let vs = List.map (get_var st) vars in
    let r = Bdd.exists st.man vs (get_fn st f) in
    Hashtbl.replace st.defs g r;
    [ Printf.sprintf "%s: %d node(s)" g (Bdd.size st.man r) ]
  | "forall" :: g :: f :: (_ :: _ as vars) ->
    let vs = List.map (get_var st) vars in
    let r = Bdd.forall st.man vs (get_fn st f) in
    Hashtbl.replace st.defs g r;
    [ Printf.sprintf "%s: %d node(s)" g (Bdd.size st.man r) ]
  | [ "compose"; g; f; x; h ] ->
    let r =
      Bdd.compose st.man (get_fn st f) ~var:(get_var st x) (get_fn st h)
    in
    Hashtbl.replace st.defs g r;
    [ Printf.sprintf "%s: %d node(s)" g (Bdd.size st.man r) ]
  | cmd :: _ -> fail "unknown command %s" cmd

let run st text =
  let lines = String.split_on_char '\n' text in
  List.concat_map
    (fun line ->
      try exec_line st line with Failure msg -> [ "error: " ^ msg ])
    lines

let run_script text = run (create ()) text
