(** Subject graphs: the Boolean network decomposed into the NAND2/INV
    basis, hash-consed, with fanout counts - the canvas tree-covering
    operates on. *)

type node =
  | S_input of string
  | S_nand of int * int
  | S_inv of int

type t = {
  nodes : node array;  (** Indexed by id; children have smaller ids. *)
  outputs : (string * int) list;  (** Output name -> subject id. *)
  inputs : (string * int) list;  (** Input name -> subject id. *)
  fanout : int array;  (** References from other nodes and outputs. *)
}

val of_network : Vc_network.Network.t -> t
(** Decompose every node through its factored form.
    @raise Failure if the network has constant nodes (run
    {!Vc_multilevel.Opt.sweep} first). *)

val size : t -> int

val nand_count : t -> int

val inv_count : t -> int

val eval : t -> (string -> bool) -> bool array
(** Value of every subject node under an input assignment. *)

val simulate : t -> (string -> bool) -> (string * bool) list
(** Output values under an input assignment. *)
