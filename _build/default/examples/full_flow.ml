(* Logic to layout, literally: a 4-bit ripple-carry adder and a 7-segment
   decoder pushed through synthesis, mapping (both objectives), placement,
   routing and timing - the complete arc of the course in one run. *)

let adder4 () =
  let e = Vc_cube.Expr.parse in
  let bindings = ref [] in
  let carry = ref "cin" in
  for i = 0 to 3 do
    let a = Printf.sprintf "a%d" i and b = Printf.sprintf "b%d" i in
    let s = Printf.sprintf "s%d" i and c = Printf.sprintf "c%d" i in
    bindings :=
      (s, e (Printf.sprintf "%s ^ %s ^ %s" a b !carry)) :: !bindings;
    bindings :=
      ( c,
        e
          (Printf.sprintf "(%s & %s) | (%s & %s) | (%s & %s)" a b a !carry b
             !carry) )
      :: !bindings;
    carry := c
  done;
  let inputs =
    List.concat_map
      (fun i -> [ Printf.sprintf "a%d" i; Printf.sprintf "b%d" i ])
      [ 0; 1; 2; 3 ]
    @ [ "cin" ]
  in
  Vc_network.Network.of_exprs ~name:"adder4" ~inputs (List.rev !bindings)

(* segments of a 7-segment display decoding a 4-bit value 0-9 *)
let seven_segment () =
  let seg_minterms =
    [
      ("seg_a", [ 0; 2; 3; 5; 6; 7; 8; 9 ]);
      ("seg_b", [ 0; 1; 2; 3; 4; 7; 8; 9 ]);
      ("seg_c", [ 0; 1; 3; 4; 5; 6; 7; 8; 9 ]);
      ("seg_d", [ 0; 2; 3; 5; 6; 8; 9 ]);
      ("seg_e", [ 0; 2; 6; 8 ]);
      ("seg_f", [ 0; 4; 5; 6; 8; 9 ]);
      ("seg_g", [ 2; 3; 4; 5; 6; 8; 9 ]);
    ]
  in
  let order = [ "d3"; "d2"; "d1"; "d0" ] in
  Vc_network.Network.of_exprs ~name:"seven_seg" ~inputs:order
    (List.map
       (fun (name, ms) -> (name, Vc_cube.Expr.of_minterms order ms))
       seg_minterms)

let run name net =
  Printf.printf "\n================ %s ================\n" name;
  List.iter
    (fun (mode, label) ->
      Printf.printf "--- %s mapping ---\n" label;
      let options = { Vc_mooc.Flow.default_options with Vc_mooc.Flow.mode } in
      let r = Vc_mooc.Flow.run ~options net in
      print_string (Vc_mooc.Flow.report_to_string r);
      assert r.Vc_mooc.Flow.equivalent)
    [
      (Vc_techmap.Map.Min_area, "min-area");
      (Vc_techmap.Map.Min_delay, "min-delay");
    ]

let () =
  run "4-bit ripple-carry adder" (adder4 ());
  run "7-segment decoder" (seven_segment ());
  (* keep a routed layout around as an artifact *)
  let r = Vc_mooc.Flow.run (adder4 ()) in
  Out_channel.with_open_text "adder4_layout.svg" (fun oc ->
      Out_channel.output_string oc
        (Vc_route.Render.result_svg r.Vc_mooc.Flow.routing));
  print_endline "\nwrote adder4_layout.svg"
