lib/place/quadratic.mli: Pnet
