(* Offline analytics over journal JSONL files - the read side of
   Journal.open_jsonl. Everything here is pure over decoded event lists
   so bin/vcstat stays a thin argument-parsing shell and the test suite
   can drive the analytics directly. *)

type load = {
  events : Journal.event list;  (** Decoded events, file order. *)
  malformed : (int * string) list;  (** 1-based line number, error. *)
}

let severity_of_string = function
  | "DEBUG" -> Some Journal.Debug
  | "INFO" -> Some Journal.Info
  | "WARN" -> Some Journal.Warn
  | "ERROR" -> Some Journal.Error
  | _ -> None

let parse_line line =
  match Json.parse_result line with
  | Error e -> Error e
  | Ok j -> (
    let str_field name =
      match Option.bind (Json.member name j) Json.to_str with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "missing string field %S" name)
    in
    let num_field name =
      match Option.bind (Json.member name j) Json.to_num with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "missing numeric field %S" name)
    in
    let ( let* ) = Result.bind in
    let* seq = num_field "seq" in
    let* ts = num_field "ts" in
    let* sev_s = str_field "severity" in
    let* component = str_field "component" in
    let* name = str_field "event" in
    match severity_of_string sev_s with
    | None -> Error (Printf.sprintf "unknown severity %S" sev_s)
    | Some severity ->
      let attrs =
        match Json.member "attrs" j with
        | Some (Json.Obj fields) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
            fields
        | _ -> []
      in
      Ok
        {
          Journal.ev_seq = int_of_float seq;
          ev_ts = ts;
          ev_severity = severity;
          ev_component = component;
          ev_name = name;
          ev_attrs = attrs;
        })

let load_file file =
  In_channel.with_open_text file (fun ic ->
      let events = ref [] and malformed = ref [] and lineno = ref 0 in
      (try
         while true do
           match In_channel.input_line ic with
           | None -> raise Exit
           | Some line ->
             incr lineno;
             if String.trim line <> "" then begin
               match parse_line line with
               | Ok e -> events := e :: !events
               | Error msg -> malformed := (!lineno, msg) :: !malformed
             end
         done
       with Exit -> ());
      { events = List.rev !events; malformed = List.rev !malformed })

let load_files files =
  List.fold_left
    (fun acc file ->
      let l = load_file file in
      { events = acc.events @ l.events; malformed = acc.malformed @ l.malformed })
    { events = []; malformed = [] }
    files

(* ------------------------------------------------------------------ *)
(* segment-set expansion                                               *)
(* ------------------------------------------------------------------ *)

(* Tiny in-process glob: '*' matches any run (possibly empty), '?' one
   character - enough for "journal.*.jsonl" without shell quoting
   games. Applied to the basename only. *)
let glob_match pat name =
  let pl = String.length pat and nl = String.length name in
  let rec go pi ni =
    if pi = pl then ni = nl
    else
      match pat.[pi] with
      | '*' -> go (pi + 1) ni || (ni < nl && go pi (ni + 1))
      | '?' -> ni < nl && go (pi + 1) (ni + 1)
      | c -> ni < nl && name.[ni] = c && go (pi + 1) (ni + 1)
  in
  go 0 0

let segment_set file =
  let n = Journal.next_segment_index file in
  List.filter Sys.file_exists
    (List.init n (fun i -> Journal.segment_path file i))

let expand_segments args =
  List.concat_map
    (fun arg ->
      if String.exists (fun c -> c = '*' || c = '?') arg then begin
        let dir = Filename.dirname arg and pat = Filename.basename arg in
        match Sys.readdir dir with
        | exception Sys_error _ -> [ arg ]
        | entries -> (
          match
            Array.to_list entries
            |> List.filter (glob_match pat)
            |> List.sort compare
            |> List.map (Filename.concat dir)
          with
          | [] -> [ arg ] (* keep it: load_file reports the miss *)
          | l -> l)
      end
      else if Sys.file_exists arg then [ arg ]
      else
        (* a rotated journal is named by its base file; expand it to
           the segment set the writer actually produced *)
        match segment_set arg with [] -> [ arg ] | segs -> segs)
    args

(* ------------------------------------------------------------------ *)
(* summary                                                             *)
(* ------------------------------------------------------------------ *)

let latency_of (e : Journal.event) =
  Option.bind (List.assoc_opt "latency_s" e.Journal.ev_attrs) float_of_string_opt

type latency_stats = {
  l_count : int;
  l_mean_s : float;
  l_p50_s : float;
  l_p90_s : float;
  l_p99_s : float;
  l_max_s : float;
}

let latency_stats_of samples =
  match samples with
  | [] -> None
  | _ ->
    Some
      {
        l_count = List.length samples;
        l_mean_s = Stats.mean samples;
        l_p50_s = Stats.percentile samples 50.0;
        l_p90_s = Stats.percentile samples 90.0;
        l_p99_s = Stats.percentile samples 99.0;
        l_max_s = Stats.maximum samples;
      }

type summary = {
  s_total : int;
  s_by_component : (string * int) list;  (** Sorted by name. *)
  s_by_event : (string * int) list;  (** [component.event], sorted. *)
  s_by_severity : (string * int) list;  (** Only present severities. *)
  s_errors : int;
  s_error_rate : float;  (** ERROR events / total (0 when empty). *)
  s_seq_min : int;  (** 0 when there are no events. *)
  s_seq_max : int;
  s_seq_distinct : int;  (** Distinct sequence numbers seen. *)
  s_seq_gaps : int;  (** Missing seqs within [min..max]; 0 = no loss. *)
  s_latency : latency_stats option;  (** Over every latency-bearing event. *)
  s_latency_by_event : (string * latency_stats) list;
  s_latency_by_outcome : (string * latency_stats) list;
  s_slowest : (Journal.event * float) list;  (** Slowest first. *)
}

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let sorted_counts tbl =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let event_key (e : Journal.event) =
  e.Journal.ev_component ^ "." ^ e.Journal.ev_name

let summarize ?(top = 5) events =
  let by_component = Hashtbl.create 16
  and by_event = Hashtbl.create 16
  and by_severity = Hashtbl.create 4
  and by_event_latency : (string, float list ref) Hashtbl.t = Hashtbl.create 16
  and by_outcome_latency : (string, float list ref) Hashtbl.t =
    Hashtbl.create 8
  and seqs = Hashtbl.create 1024
  and latencies = ref []
  and timed = ref []
  and errors = ref 0 in
  let push tbl key l =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := l :: !r
    | None -> Hashtbl.add tbl key (ref [ l ])
  in
  List.iter
    (fun (e : Journal.event) ->
      bump by_component e.Journal.ev_component;
      bump by_event (event_key e);
      bump by_severity (Journal.severity_to_string e.Journal.ev_severity);
      Hashtbl.replace seqs e.Journal.ev_seq ();
      if e.Journal.ev_severity = Journal.Error then incr errors;
      match latency_of e with
      | None -> ()
      | Some l ->
        latencies := l :: !latencies;
        timed := (e, l) :: !timed;
        push by_event_latency (event_key e) l;
        (* submission/replay events carry an "outcome" attribute
           (executed / cache_hit / rejected) - the split an operator
           needs to see whether shed traffic hides a slow tail *)
        (match List.assoc_opt "outcome" e.Journal.ev_attrs with
        | Some outcome -> push by_outcome_latency outcome l
        | None -> ()))
    events;
  let total = List.length events in
  let slowest =
    let sorted =
      List.stable_sort (fun (_, a) (_, b) -> compare b a) (List.rev !timed)
    in
    List.filteri (fun i _ -> i < top) sorted
  in
  (* Writers assign seqs contiguously, and a restart starts over at 1,
     so over any union of segments the distinct seqs should tile
     [min..max] exactly; a shortfall means a flushed segment (or a
     slice of one) is missing from the set - the "no lost journal
     segments" invariant the crash-recovery smoke checks. *)
  let seq_min, seq_max =
    Hashtbl.fold
      (fun s () (lo, hi) -> (min lo s, max hi s))
      seqs
      (max_int, min_int)
  in
  let seq_distinct = Hashtbl.length seqs in
  let seq_min = if seq_distinct = 0 then 0 else seq_min in
  let seq_max = if seq_distinct = 0 then 0 else seq_max in
  {
    s_total = total;
    s_by_component = sorted_counts by_component;
    s_by_event = sorted_counts by_event;
    s_by_severity = sorted_counts by_severity;
    s_errors = !errors;
    s_error_rate = (if total = 0 then 0.0 else float_of_int !errors /. float_of_int total);
    s_seq_min = seq_min;
    s_seq_max = seq_max;
    s_seq_distinct = seq_distinct;
    s_seq_gaps =
      (if seq_distinct = 0 then 0 else seq_max - seq_min + 1 - seq_distinct);
    s_latency = latency_stats_of !latencies;
    s_latency_by_event =
      List.sort compare
        (Hashtbl.fold
           (fun k r acc ->
             match latency_stats_of !r with
             | Some s -> (k, s) :: acc
             | None -> acc)
           by_event_latency []);
    s_latency_by_outcome =
      List.sort compare
        (Hashtbl.fold
           (fun k r acc ->
             match latency_stats_of !r with
             | Some s -> (k, s) :: acc
             | None -> acc)
           by_outcome_latency []);
    s_slowest = slowest;
  }

(* ------------------------------------------------------------------ *)
(* spans                                                               *)
(* ------------------------------------------------------------------ *)

type qspan = {
  q_name : string;
  q_start_s : float;
  q_duration_s : float;
  q_children : qspan list;  (** Oldest first. *)
}

(* A begin/end pair is an event name ending in ".begin" / ".end" with
   the same prefix, same component and (when present) the same "stage"
   attribute - flow's stage.begin/stage.end is the canonical producer.
   Events are first partitioned into independent streams - by trace_id
   attr when present, else domain attr, else component - so the
   interleaved output of concurrent requests never mis-nests (one
   request's begin must not adopt another's as a child just because a
   multi-domain journal interleaved them). Within a stream,
   reconstruction is a stack walk in sequence order; an end with no
   matching open frame is ignored, frames left open at EOF close at the
   stream's last seen timestamp. *)

type span_stream = {
  (* open frames, innermost first: (key, label, start, children acc) *)
  mutable st_stack :
    ((string * string * string option) * string * float * qspan list ref) list;
  mutable st_roots : qspan list;
  mutable st_last_ts : float;
}

let spans_of events =
  let suffix s suf =
    String.length s > String.length suf
    && String.sub s (String.length s - String.length suf) (String.length suf)
       = suf
  in
  let prefix_of s suf = String.sub s 0 (String.length s - String.length suf) in
  let key (e : Journal.event) p =
    (e.Journal.ev_component, p, List.assoc_opt "stage" e.Journal.ev_attrs)
  in
  let label (e : Journal.event) p =
    e.Journal.ev_component ^ "/"
    ^ match List.assoc_opt "stage" e.Journal.ev_attrs with
      | Some s -> s
      | None -> p
  in
  let stream_key (e : Journal.event) =
    match List.assoc_opt "trace_id" e.Journal.ev_attrs with
    | Some id -> "trace:" ^ id
    | None -> (
      match List.assoc_opt "domain" e.Journal.ev_attrs with
      | Some d -> "domain:" ^ d
      | None -> "component:" ^ e.Journal.ev_component)
  in
  let streams : (string, span_stream) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let stream_of e =
    let k = stream_key e in
    match Hashtbl.find_opt streams k with
    | Some st -> st
    | None ->
      let st = { st_stack = []; st_roots = []; st_last_ts = 0.0 } in
      Hashtbl.add streams k st;
      order := st :: !order;
      st
  in
  let close_top st ts =
    match st.st_stack with
    | [] -> ()
    | (_, lbl, start, kids) :: rest ->
      st.st_stack <- rest;
      let sp =
        {
          q_name = lbl;
          q_start_s = start;
          q_duration_s = Float.max 0.0 (ts -. start);
          q_children = List.rev !kids;
        }
      in
      (match st.st_stack with
      | (_, _, _, pkids) :: _ -> pkids := sp :: !pkids
      | [] -> st.st_roots <- sp :: st.st_roots)
  in
  List.iter
    (fun (e : Journal.event) ->
      let st = stream_of e in
      st.st_last_ts <- e.Journal.ev_ts;
      if suffix e.Journal.ev_name ".begin" then begin
        let p = prefix_of e.Journal.ev_name ".begin" in
        st.st_stack <-
          (key e p, label e p, e.Journal.ev_ts, ref []) :: st.st_stack
      end
      else if suffix e.Journal.ev_name ".end" then begin
        let p = prefix_of e.Journal.ev_name ".end" in
        let k = key e p in
        if List.exists (fun (k', _, _, _) -> k' = k) st.st_stack then begin
          (* close unterminated inner frames at this timestamp first *)
          while (match st.st_stack with
                 | (k', _, _, _) :: _ -> k' <> k
                 | [] -> false)
          do
            close_top st e.Journal.ev_ts
          done;
          close_top st e.Journal.ev_ts
        end
      end)
    events;
  let roots =
    List.concat_map
      (fun st ->
        while st.st_stack <> [] do
          close_top st st.st_last_ts
        done;
        List.rev st.st_roots)
      (List.rev !order)
  in
  (* streams are reported in first-appearance order; within the merged
     forest, sort roots by start time so concurrent streams read as a
     timeline *)
  List.stable_sort (fun a b -> compare a.q_start_s b.q_start_s) roots

(* ------------------------------------------------------------------ *)
(* funnel                                                              *)
(* ------------------------------------------------------------------ *)

type funnel_stage = { f_stage : string; f_count : int }

(* Mooc.Cohort.simulate emits one "funnel.stage" event per funnel level,
   in order, with "stage" and "count" attributes. *)
let funnel_of events =
  List.filter_map
    (fun (e : Journal.event) ->
      if e.Journal.ev_name <> "funnel.stage" then None
      else
        match
          ( List.assoc_opt "stage" e.Journal.ev_attrs,
            Option.bind
              (List.assoc_opt "count" e.Journal.ev_attrs)
              int_of_string_opt )
        with
        | Some stage, Some count -> Some { f_stage = stage; f_count = count }
        | _ -> None)
    events

(* ------------------------------------------------------------------ *)
(* request timelines (trace-id join)                                   *)
(* ------------------------------------------------------------------ *)

type request_timeline = {
  rt_trace : string;
  rt_tool : string option;
  rt_session : string option;
  rt_outcome : string option;
  rt_client_s : float option;
  rt_server_s : float option;
  rt_wire_s : float option;
  rt_phases : (string * float) list;
  rt_client : bool;
  rt_server : bool;
}

type request_join = {
  rj_timelines : request_timeline list;
  rj_client_total : int;
  rj_server_total : int;
  rj_matched : int;
  rj_match_rate : float;
}

(* The canonical phase order for reports: the server-side request
   phases first (what request.replied events carry), then the derived
   end-to-end rows. Unknown phases sort after these, alphabetically. *)
let phase_order = [ "queue"; "cache"; "execute"; "reply"; "server"; "wire"; "client" ]

let phase_rank name =
  let rec go i = function
    | [] -> List.length phase_order
    | p :: rest -> if p = name then i else go (i + 1) rest
  in
  go 0 phase_order

(* Join client- and server-side events by their trace_id attr. The
   client side is a vcload "replay.request" event; the server side is a
   "request.replied" event (phase.* attrs) or, for requests shed at
   admission, a "job.rejected.*" event. Events may come from one
   combined list or from load_files over both journals - only the attrs
   matter. *)
let join_requests events =
  let tbl : (string, request_timeline ref) Hashtbl.t = Hashtbl.create 256 in
  let order = ref [] in
  let slot trace =
    match Hashtbl.find_opt tbl trace with
    | Some r -> r
    | None ->
      let r =
        ref
          {
            rt_trace = trace;
            rt_tool = None;
            rt_session = None;
            rt_outcome = None;
            rt_client_s = None;
            rt_server_s = None;
            rt_wire_s = None;
            rt_phases = [];
            rt_client = false;
            rt_server = false;
          }
      in
      Hashtbl.add tbl trace r;
      order := r :: !order;
      r
  in
  let starts_with ~prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  List.iter
    (fun (e : Journal.event) ->
      match List.assoc_opt "trace_id" e.Journal.ev_attrs with
      | None -> ()
      | Some trace ->
        let attr k = List.assoc_opt k e.Journal.ev_attrs in
        let fattr k = Option.bind (attr k) float_of_string_opt in
        let r = slot trace in
        let keep old fresh = if fresh = None then old else fresh in
        if e.Journal.ev_component = "vcload"
           && e.Journal.ev_name = "replay.request"
        then
          r :=
            {
              !r with
              rt_client = true;
              rt_client_s = keep !r.rt_client_s (fattr "latency_s");
              rt_tool = keep !r.rt_tool (attr "tool");
              rt_outcome = keep !r.rt_outcome (attr "outcome");
            }
        else if e.Journal.ev_name = "request.replied" then begin
          let phases =
            List.filter_map
              (fun (k, v) ->
                if starts_with ~prefix:"phase." k then
                  Option.map
                    (fun d ->
                      (String.sub k 6 (String.length k - 6), d))
                    (float_of_string_opt v)
                else None)
              e.Journal.ev_attrs
          in
          r :=
            {
              !r with
              rt_server = true;
              rt_server_s = keep !r.rt_server_s (fattr "total_s");
              rt_phases = (if phases = [] then !r.rt_phases else phases);
              rt_tool = keep !r.rt_tool (attr "tool");
              rt_session = keep !r.rt_session (attr "session");
              (* the server's outcome wins: it distinguishes reject
                 labels the client only sees as a status line *)
              rt_outcome =
                (match attr "outcome" with
                | Some o -> Some o
                | None -> !r.rt_outcome);
            }
        end
        else if
          e.Journal.ev_component = "server"
          && (starts_with ~prefix:"job.rejected." e.Journal.ev_name
             || e.Journal.ev_name = "request.admitted"
             || e.Journal.ev_name = "request.dequeued")
        then
          r :=
            {
              !r with
              rt_server = true;
              rt_tool = keep !r.rt_tool (attr "tool");
              rt_session = keep !r.rt_session (attr "session");
              rt_outcome =
                (if starts_with ~prefix:"job.rejected." e.Journal.ev_name then
                   Some "rejected"
                 else !r.rt_outcome);
            })
    events;
  let timelines =
    List.rev_map
      (fun r ->
        let t = !r in
        let wire =
          match (t.rt_client_s, t.rt_server_s) with
          | Some c, Some s -> Some (Float.max 0.0 (c -. s))
          | _ -> None
        in
        { t with rt_wire_s = wire })
      !order
  in
  let count p = List.length (List.filter p timelines) in
  let clients = count (fun t -> t.rt_client) in
  let servers = count (fun t -> t.rt_server) in
  let matched = count (fun t -> t.rt_client && t.rt_server) in
  {
    rj_timelines = timelines;
    rj_client_total = clients;
    rj_server_total = servers;
    rj_matched = matched;
    rj_match_rate =
      (if clients = 0 then 1.0
       else float_of_int matched /. float_of_int clients);
  }

let phase_breakdown join =
  let tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let push name v =
    match Hashtbl.find_opt tbl name with
    | Some r -> r := v :: !r
    | None -> Hashtbl.add tbl name (ref [ v ])
  in
  List.iter
    (fun t ->
      List.iter (fun (name, d) -> push name d) t.rt_phases;
      Option.iter (push "server") t.rt_server_s;
      Option.iter (push "wire") t.rt_wire_s;
      Option.iter (push "client") t.rt_client_s)
    join.rj_timelines;
  Hashtbl.fold
    (fun name r acc ->
      match latency_stats_of !r with
      | Some s -> (name, s) :: acc
      | None -> acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) ->
         compare (phase_rank a, a) (phase_rank b, b))

(* ------------------------------------------------------------------ *)
(* renderers: text                                                     *)
(* ------------------------------------------------------------------ *)

let ms v = v *. 1e3

let render_latency_line name (s : latency_stats) =
  Printf.sprintf "  %-28s %6d %9.3f %9.3f %9.3f %9.3f\n" name s.l_count
    (ms s.l_p50_s) (ms s.l_p90_s) (ms s.l_p99_s) (ms s.l_max_s)

let render_summary s =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "events: %d   errors: %d (%.2f%%)\n" s.s_total s.s_errors
       (100.0 *. s.s_error_rate));
  if s.s_seq_distinct > 0 then
    Buffer.add_string b
      (Printf.sprintf "seq: %d..%d   distinct: %d   gaps: %d\n" s.s_seq_min
         s.s_seq_max s.s_seq_distinct s.s_seq_gaps);
  if s.s_by_component <> [] then begin
    Buffer.add_string b "by component:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-28s %6d\n" k v))
      s.s_by_component
  end;
  if s.s_by_event <> [] then begin
    Buffer.add_string b "by event:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-28s %6d\n" k v))
      s.s_by_event
  end;
  if s.s_by_severity <> [] then begin
    Buffer.add_string b "by severity:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf "  %-28s %6d\n" k v))
      s.s_by_severity
  end;
  (match s.s_latency with
  | None -> ()
  | Some all ->
    Buffer.add_string b
      "latency (count / p50 ms / p90 ms / p99 ms / max ms):\n";
    Buffer.add_string b (render_latency_line "(all)" all);
    List.iter
      (fun (k, st) -> Buffer.add_string b (render_latency_line k st))
      s.s_latency_by_event);
  if s.s_latency_by_outcome <> [] then begin
    Buffer.add_string b
      "latency by outcome (count / p50 ms / p90 ms / p99 ms / max ms):\n";
    List.iter
      (fun (k, st) -> Buffer.add_string b (render_latency_line k st))
      s.s_latency_by_outcome
  end;
  if s.s_slowest <> [] then begin
    Buffer.add_string b "slowest events:\n";
    List.iter
      (fun ((e : Journal.event), l) ->
        Buffer.add_string b
          (Printf.sprintf "  %9.3f ms  [%d] %s%s\n" (ms l) e.Journal.ev_seq
             (event_key e)
             (match List.assoc_opt "stage" e.Journal.ev_attrs with
             | Some st -> " stage=" ^ st
             | None -> (
               match List.assoc_opt "tool" e.Journal.ev_attrs with
               | Some t -> " tool=" ^ t
               | None -> ""))))
      s.s_slowest
  end;
  Buffer.contents b

let render_spans roots =
  let b = Buffer.create 1024 in
  let total =
    List.fold_left (fun acc sp -> acc +. sp.q_duration_s) 0.0 roots
  in
  let rec go depth sp =
    Buffer.add_string b
      (Printf.sprintf "%s%-*s %9.3f ms  %s\n"
         (String.make (2 * depth) ' ')
         (max 1 (30 - (2 * depth)))
         sp.q_name (ms sp.q_duration_s)
         (Stats.bar ~width:40 sp.q_duration_s (Float.max total 1e-12)));
    List.iter (go (depth + 1)) sp.q_children
  in
  List.iter (go 0) roots;
  if roots <> [] then
    Buffer.add_string b (Printf.sprintf "total: %.3f ms over %d span(s)\n"
                           (ms total) (List.length roots));
  Buffer.contents b

let render_funnel stages =
  let b = Buffer.create 512 in
  let first = match stages with s :: _ -> max 1 s.f_count | [] -> 1 in
  List.iteri
    (fun i s ->
      let prev =
        if i = 0 then s.f_count else (List.nth stages (i - 1)).f_count
      in
      let pct base v =
        if base <= 0 then 0.0 else 100.0 *. float_of_int v /. float_of_int base
      in
      Buffer.add_string b
        (Printf.sprintf "  %-18s %7d  %5.1f%% of start  %5.1f%% of prev  %s\n"
           s.f_stage s.f_count
           (pct first s.f_count)
           (pct (max 1 prev) s.f_count)
           (Stats.bar ~width:40 (float_of_int s.f_count) (float_of_int first))))
    stages;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* renderers: JSON                                                     *)
(* ------------------------------------------------------------------ *)

let latency_json (s : latency_stats) =
  Json.obj
    [
      ("count", Json.int s.l_count);
      ("mean_s", Json.num s.l_mean_s);
      ("p50_s", Json.num s.l_p50_s);
      ("p90_s", Json.num s.l_p90_s);
      ("p99_s", Json.num s.l_p99_s);
      ("max_s", Json.num s.l_max_s);
    ]

let summary_to_json s =
  let counts kvs = Json.obj (List.map (fun (k, v) -> (k, Json.int v)) kvs) in
  Json.obj
    [
      ("events", Json.int s.s_total);
      ("errors", Json.int s.s_errors);
      ("error_rate", Json.num s.s_error_rate);
      ( "seq",
        Json.obj
          [
            ("min", Json.int s.s_seq_min);
            ("max", Json.int s.s_seq_max);
            ("distinct", Json.int s.s_seq_distinct);
            ("gaps", Json.int s.s_seq_gaps);
          ] );
      ("by_component", counts s.s_by_component);
      ("by_event", counts s.s_by_event);
      ("by_severity", counts s.s_by_severity);
      ( "latency",
        match s.s_latency with
        | Some all ->
          Json.obj
            (("all", latency_json all)
            :: List.map (fun (k, st) -> (k, latency_json st)) s.s_latency_by_event
            )
        | None -> Json.obj [] );
      ( "latency_by_outcome",
        Json.obj
          (List.map
             (fun (k, st) -> (k, latency_json st))
             s.s_latency_by_outcome) );
      ( "slowest",
        Json.arr
          (List.map
             (fun ((e : Journal.event), l) ->
               Json.obj
                 [
                   ("seq", Json.int e.Journal.ev_seq);
                   ("event", Json.str (event_key e));
                   ("latency_s", Json.num l);
                 ])
             s.s_slowest) );
    ]

let rec span_json sp =
  Json.obj
    [
      ("name", Json.str sp.q_name);
      ("start_s", Json.num sp.q_start_s);
      ("duration_s", Json.num sp.q_duration_s);
      ("children", Json.arr (List.map span_json sp.q_children));
    ]

let spans_to_json roots =
  Json.obj [ ("spans", Json.arr (List.map span_json roots)) ]

let funnel_to_json stages =
  Json.obj
    [
      ( "funnel",
        Json.arr
          (List.map
             (fun s ->
               Json.obj
                 [
                   ("stage", Json.str s.f_stage); ("count", Json.int s.f_count);
                 ])
             stages) );
    ]

(* ------------------------------------------------------------------ *)
(* renderers: request timelines                                        *)
(* ------------------------------------------------------------------ *)

let slowest_timelines ?(top = 5) join =
  let latency t =
    match (t.rt_client_s, t.rt_server_s) with
    | Some c, _ -> c
    | None, Some s -> s
    | None, None -> 0.0
  in
  let sorted =
    List.stable_sort
      (fun a b -> compare (latency b) (latency a))
      join.rj_timelines
  in
  List.filteri (fun i _ -> i < top) sorted

let render_requests ?(top = 5) join =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "requests: %d client, %d server, %d matched (%.2f%% of client)\n"
       join.rj_client_total join.rj_server_total join.rj_matched
       (100.0 *. join.rj_match_rate));
  (match phase_breakdown join with
  | [] -> ()
  | phases ->
    Buffer.add_string b
      "per-phase latency (count / p50 ms / p90 ms / p99 ms / max ms):\n";
    List.iter
      (fun (name, st) -> Buffer.add_string b (render_latency_line name st))
      phases);
  (match slowest_timelines ~top join with
  | [] -> ()
  | slow ->
    Buffer.add_string b "slowest requests:\n";
    List.iter
      (fun t ->
        let opt f = function Some v -> f v | None -> "-" in
        Buffer.add_string b
          (Printf.sprintf "  %s  %-10s %-10s client %s  server %s  wire %s"
             t.rt_trace
             (Option.value ~default:"-" t.rt_tool)
             (Option.value ~default:"-" t.rt_outcome)
             (opt (fun v -> Printf.sprintf "%.3f ms" (ms v)) t.rt_client_s)
             (opt (fun v -> Printf.sprintf "%.3f ms" (ms v)) t.rt_server_s)
             (opt (fun v -> Printf.sprintf "%.3f ms" (ms v)) t.rt_wire_s));
        if t.rt_phases <> [] then
          Buffer.add_string b
            (Printf.sprintf "  (%s)"
               (String.concat " + "
                  (List.map
                     (fun (n, d) -> Printf.sprintf "%s %.3f ms" n (ms d))
                     t.rt_phases)));
        Buffer.add_char b '\n')
      slow);
  Buffer.contents b

let requests_to_json ?(top = 5) join =
  let opt_num = function Some v -> Json.num v | None -> "null" in
  Json.obj
    [
      ("client_requests", Json.int join.rj_client_total);
      ("server_requests", Json.int join.rj_server_total);
      ("matched", Json.int join.rj_matched);
      ("match_rate", Json.num join.rj_match_rate);
      ( "phases",
        Json.obj
          (List.map
             (fun (name, st) -> (name, latency_json st))
             (phase_breakdown join)) );
      ( "slowest",
        Json.arr
          (List.map
             (fun t ->
               Json.obj
                 [
                   ("trace_id", Json.str t.rt_trace);
                   ( "tool",
                     match t.rt_tool with
                     | Some s -> Json.str s
                     | None -> "null" );
                   ( "outcome",
                     match t.rt_outcome with
                     | Some s -> Json.str s
                     | None -> "null" );
                   ("client_s", opt_num t.rt_client_s);
                   ("server_s", opt_num t.rt_server_s);
                   ("wire_s", opt_num t.rt_wire_s);
                   ( "phases",
                     Json.obj
                       (List.map
                          (fun (n, d) -> (n, Json.num d))
                          t.rt_phases) );
                 ])
             (slowest_timelines ~top join)) );
    ]

(* ------------------------------------------------------------------ *)
(* continuous-profile samples                                          *)
(* ------------------------------------------------------------------ *)

let profile_folded events =
  let tick_set = Hashtbl.create 64 in
  let agg : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (e : Journal.event) ->
      if e.Journal.ev_component = "profile" && e.Journal.ev_name = "sample"
      then begin
        (match List.assoc_opt "tick" e.Journal.ev_attrs with
        | Some t -> Hashtbl.replace tick_set t ()
        | None -> ());
        match
          ( List.assoc_opt "stack" e.Journal.ev_attrs,
            Option.bind
              (List.assoc_opt "count" e.Journal.ev_attrs)
              int_of_string_opt )
        with
        | Some stack, Some count ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt agg stack) in
          Hashtbl.replace agg stack (prev + count)
        | _ -> ()
      end)
    events;
  let folded =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg []
    |> List.sort (fun (ka, ca) (kb, cb) ->
           match compare cb ca with 0 -> compare ka kb | c -> c)
  in
  (Hashtbl.length tick_set, folded)
