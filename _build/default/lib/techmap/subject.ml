module Network = Vc_network.Network
module Factor = Vc_multilevel.Factor
module Algebraic = Vc_multilevel.Algebraic

type node =
  | S_input of string
  | S_nand of int * int
  | S_inv of int

type t = {
  nodes : node array;
  outputs : (string * int) list;
  inputs : (string * int) list;
  fanout : int array;
}

type builder = {
  mutable arr : node array;
  mutable count : int;
  cons : (node, int) Hashtbl.t;
}

let push b n =
  match Hashtbl.find_opt b.cons n with
  | Some id -> id
  | None ->
    if b.count = Array.length b.arr then begin
      let bigger = Array.make (max 64 (2 * b.count)) n in
      Array.blit b.arr 0 bigger 0 b.count;
      b.arr <- bigger
    end;
    let id = b.count in
    b.count <- id + 1;
    b.arr.(id) <- n;
    Hashtbl.add b.cons n id;
    id

let mk_input b name = push b (S_input name)

let mk_inv b x =
  (* collapse double inversion *)
  match b.arr.(x) with
  | S_inv y -> y
  | S_input _ | S_nand _ -> push b (S_inv x)

let mk_nand b x y =
  let x, y = if x <= y then (x, y) else (y, x) in
  push b (S_nand (x, y))

let mk_and b x y = mk_inv b (mk_nand b x y)

let mk_or b x y = mk_nand b (mk_inv b x) (mk_inv b y)

let of_network net =
  let b = { arr = [||]; count = 0; cons = Hashtbl.create 256 } in
  let signal_id = Hashtbl.create 64 in
  List.iter
    (fun i -> Hashtbl.replace signal_id i (mk_input b i))
    (Network.inputs net);
  let reduce f = function
    | [] -> None
    | x :: rest -> Some (List.fold_left f x rest)
  in
  let build name =
    match Network.find_node net name with
    | None -> failwith ("Subject.of_network: undefined signal " ^ name)
    | Some node ->
      let form = Factor.factor (Algebraic.of_node node) in
      let rec conv = function
        | Factor.Lit (s, pos) -> begin
          match Hashtbl.find_opt signal_id s with
          | Some id -> if pos then Some id else Some (mk_inv b id)
          | None -> failwith ("Subject.of_network: unresolved signal " ^ s)
        end
        | Factor.And fs -> reduce (mk_and b) (List.filter_map conv fs)
        | Factor.Or fs -> reduce (mk_or b) (List.filter_map conv fs)
      in
      match conv form with
      | Some id -> Hashtbl.replace signal_id name id
      | None ->
        failwith
          ("Subject.of_network: constant node " ^ name
         ^ " (sweep the network first)")
  in
  List.iter build (Network.topological_order net);
  let raw = Array.sub b.arr 0 b.count in
  (* Construction leaves dead intermediates behind (e.g. the INV eaten by a
     double-negation collapse). Prune to the cone of the outputs and the
     inputs, otherwise dead references inflate fanout counts and block
     pattern matches at what are really single-fanout nodes. *)
  let output_ids =
    List.map
      (fun o ->
        match Hashtbl.find_opt signal_id o with
        | Some id -> (o, id)
        | None -> failwith ("Subject.of_network: undriven output " ^ o))
      (Network.outputs net)
  in
  let live = Array.make (Array.length raw) false in
  let rec mark id =
    if not live.(id) then begin
      live.(id) <- true;
      match raw.(id) with
      | S_input _ -> ()
      | S_inv x -> mark x
      | S_nand (x, y) ->
        mark x;
        mark y
    end
  in
  List.iter (fun (_, id) -> mark id) output_ids;
  List.iter (fun i -> mark (Hashtbl.find signal_id i)) (Network.inputs net);
  let remap = Array.make (Array.length raw) (-1) in
  let next = ref 0 in
  Array.iteri
    (fun id alive ->
      if alive then begin
        remap.(id) <- !next;
        incr next
      end)
    live;
  let nodes = Array.make !next (S_input "") in
  Array.iteri
    (fun id alive ->
      if alive then
        nodes.(remap.(id)) <-
          (match raw.(id) with
          | S_input _ as n -> n
          | S_inv x -> S_inv remap.(x)
          | S_nand (x, y) -> S_nand (remap.(x), remap.(y))))
    live;
  let fanout = Array.make !next 0 in
  Array.iter
    (fun n ->
      match n with
      | S_input _ -> ()
      | S_inv x -> fanout.(x) <- fanout.(x) + 1
      | S_nand (x, y) ->
        fanout.(x) <- fanout.(x) + 1;
        fanout.(y) <- fanout.(y) + 1)
    nodes;
  let outputs =
    List.map
      (fun (o, id) ->
        fanout.(remap.(id)) <- fanout.(remap.(id)) + 1;
        (o, remap.(id)))
      output_ids
  in
  let inputs =
    List.map
      (fun i -> (i, remap.(Hashtbl.find signal_id i)))
      (Network.inputs net)
  in
  { nodes; outputs; inputs; fanout }

let size t = Array.length t.nodes

let nand_count t =
  Array.fold_left
    (fun acc n -> match n with S_nand _ -> acc + 1 | S_input _ | S_inv _ -> acc)
    0 t.nodes

let inv_count t =
  Array.fold_left
    (fun acc n -> match n with S_inv _ -> acc + 1 | S_input _ | S_nand _ -> acc)
    0 t.nodes

let eval t env =
  let values = Array.make (Array.length t.nodes) false in
  Array.iteri
    (fun i n ->
      values.(i) <-
        (match n with
        | S_input name -> env name
        | S_inv x -> not values.(x)
        | S_nand (x, y) -> not (values.(x) && values.(y))))
    t.nodes;
  values

let simulate t env =
  let values = eval t env in
  List.map (fun (name, id) -> (name, values.(id))) t.outputs
