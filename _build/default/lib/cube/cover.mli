(** Covers: sum-of-products lists of {!Cube.t} over a shared variable count,
    with the cover-level operations the URP recursion is built from. *)

type t = private { num_vars : int; cubes : Cube.t list }

val make : int -> Cube.t list -> t
(** [make n cubes] drops empty cubes and checks widths.
    @raise Invalid_argument if a cube has a different variable count. *)

val empty : int -> t
(** The constant-0 cover. *)

val top : int -> t
(** The constant-1 cover (a single universe cube). *)

val of_strings : int -> string list -> t
(** Cubes from {!Cube.of_string} notation. *)

val to_strings : t -> string list

val num_cubes : t -> int

val is_empty : t -> bool

val eval : t -> bool array -> bool

val union : t -> t -> t

val add_cube : t -> Cube.t -> t

val cofactor : t -> var:int -> value:bool -> t
(** Shannon cofactor of the cover: cube-wise, dropping vanished cubes. *)

val cofactor_cube : t -> Cube.t -> t
(** [cofactor_cube f c] is the generalized cofactor f|_c used by the cube
    containment check (cofactor with respect to each literal of [c]). *)

type polarity = Unate_pos | Unate_neg | Binate | Absent

val var_polarity : t -> int -> polarity
(** How variable [i] appears across the cover. *)

val is_unate : t -> bool
(** True when no variable is binate. *)

val most_binate_var : t -> int option
(** The standard URP splitting heuristic: the binate variable appearing in
    the most cubes, ties broken by the more balanced pos/neg split then by
    index; [None] if the cover is unate. *)

val has_universe_cube : t -> bool
(** True if some cube is the all-don't-care cube (instant tautology). *)

val single_cube_containment : t -> t
(** Remove cubes contained in another cube of the cover (a weak but cheap
    redundancy cleanup). *)

val truth_table : t -> bool array
(** Truth table over the cover's own [num_vars] (MSB = variable 0).
    Requires [num_vars <= 20]. *)

val of_expr : string list -> Expr.t -> t
(** Minterm-canonical cover of an expression under a variable order
    (small n only; used by tests and homework-scale problems). *)

val to_expr : string list -> t -> Expr.t
(** Sum-of-products expression naming variables by the given order. *)

val minterms : t -> int list
(** Indices (as in {!truth_table}) of covered minterms, ascending. *)

val equivalent : t -> t -> bool
(** Semantic equality via truth tables (small n). *)
