lib/mooc/projects.ml: Autograder Buffer Hashtbl Lazy List Option Printf String Vc_bdd Vc_cube Vc_place Vc_route Vc_util
