(** Multiple-output two-level minimization with cube sharing - the course
    concept ("Multi-output PLAs") that per-output Espresso leaves on the
    table: one physical AND-plane term can feed several outputs, so
    minimizing outputs jointly can use fewer distinct cubes than the sum
    of the per-output optima.

    Representation: an implicant is an input cube plus an output mask; it
    asserts output [j] on its minterms when bit [j] of the mask is set.
    The EXPAND step can raise input literals (while every asserted output
    stays inside its ON+DC set) and raise output bits (when the cube fits
    inside that output's ON+DC set); IRREDUNDANT lowers output bits and
    drops cubes. *)

type implicant = {
  cube : Vc_cube.Cube.t;
  mask : bool array;  (** Length = number of outputs. *)
}

type cover = {
  num_inputs : int;
  num_outputs : int;
  implicants : implicant list;
}

val of_pla : Pla.t -> cover
(** One implicant per distinct input cube of the PLA's ON-sets, with the
    mask collecting the outputs that share it. *)

val to_pla : Pla.t -> cover -> Pla.t
(** Rebuild a PLA with the given cover as the ON-sets; DC sets are copied
    from the original. *)

val output_cover : cover -> int -> Vc_cube.Cover.t
(** The single-output cover asserted for output [j]. *)

val check : Pla.t -> cover -> bool
(** Every output's asserted cover lies between its ON and ON+DC sets. *)

val cube_count : cover -> int
(** Distinct physical AND-plane terms (the PLA row count). *)

val minimize : Pla.t -> cover
(** Joint EXPAND / IRREDUNDANT / REDUCE loop over the shared cover. *)
