type verdict = {
  regressions : string list;
  improvements : string list;
  notes : string list;
  compared : int;
}

let has_suffix name s =
  String.length name >= String.length s
  && String.sub name (String.length name - String.length s) (String.length s) = s

(* Quality direction of a counter/metric, keyed by naming convention.
   [None] means no gate - the change is surfaced as a note only. *)
let direction name =
  let suffix = has_suffix name in
  if suffix "cache_hits" || suffix "cache.hits" || name = "nets_routed"
     || name = "equivalent" || suffix "paths_found"
  then Some `Higher_better
  else if
    suffix "misses" || suffix "rejected" || suffix "evictions"
    || List.mem name
         [
           "literals_after"; "literals_before"; "area"; "gate_delay";
           "total_delay"; "hpwl"; "wirelength"; "vias"; "overflow"; "gates";
           "cells"; "nets_total";
         ]
  then Some `Lower_better
  else None

(* Gauges are instantaneous readings, so most are not gateable - but the
   bench speedup gauges (server.bench.wN.speedup) are throughput ratios
   that must not collapse, so they gate as Higher_better under their own
   (generous) tolerance; the loadgen SLO gauges (loadgen.slo.p99_ms,
   loadgen.slo.shed_rate) are service-level bounds that gate as
   Lower_better. *)
let gauge_direction name =
  if has_suffix name ".speedup" then Some `Higher_better
  else if has_suffix name ".p99_ms" || has_suffix name ".shed_rate" then
    Some `Lower_better
  else None

let fields_of = function Json.Obj fs -> fs | _ -> []

let num_field name j = Option.bind (Json.member name j) Json.to_num

let compare_json ?(latency_tol = 0.5) ?(qor_tol = 0.0) ?(gauge_tol = 0.25)
    ?(min_latency_delta_s = 1e-4) ?(min_gauge_delta = 0.01) ~baseline ~current
    () =
  let regressions = ref [] and improvements = ref [] and notes = ref [] in
  let compared = ref 0 in
  let reg fmt = Printf.ksprintf (fun s -> regressions := s :: !regressions) fmt in
  let imp fmt = Printf.ksprintf (fun s -> improvements := s :: !improvements) fmt in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  (* latency gate: relative tolerance plus an absolute noise floor *)
  let check_latency label base cur =
    incr compared;
    let delta = cur -. base in
    if delta > (base *. latency_tol) +. 1e-12 && delta > min_latency_delta_s
    then
      reg "%s: latency %.6fs -> %.6fs (+%.0f%%, tolerance %.0f%%)" label base
        cur
        (100.0 *. delta /. Float.max base 1e-12)
        (100.0 *. latency_tol)
    else if -.delta > (base *. latency_tol) +. 1e-12 && -.delta > min_latency_delta_s
    then imp "%s: latency %.6fs -> %.6fs" label base cur
  in
  (* QoR gate: direction-aware relative tolerance *)
  let check_qor label name base cur =
    match direction name with
    | None ->
      if base <> cur then
        note "%s.%s: %g -> %g (no quality direction; not gated)" label name
          base cur
    | Some dir ->
      incr compared;
      let worse, better =
        match dir with
        | `Lower_better ->
          (cur > base +. (Float.abs base *. qor_tol) +. 1e-9,
           cur < base -. (Float.abs base *. qor_tol) -. 1e-9)
        | `Higher_better ->
          (cur < base -. (Float.abs base *. qor_tol) -. 1e-9,
           cur > base +. (Float.abs base *. qor_tol) +. 1e-9)
      in
      if worse then
        reg "%s.%s: %g -> %g (%s, tolerance %.0f%%)" label name base cur
          (match dir with
          | `Lower_better -> "higher is worse"
          | `Higher_better -> "lower is worse")
          (100.0 *. qor_tol)
      else if better then imp "%s.%s: %g -> %g" label name base cur
  in
  (* gauge gate: direction-aware like QoR, but only for gauges with a
     declared direction (.speedup / .p99_ms / .shed_rate); everything
     else is informational. The relative band is widened by an absolute
     noise floor so a baseline near zero (a clean run's shed_rate) does
     not turn every nonzero reading into a regression. *)
  let check_gauge label name base cur =
    match gauge_direction name with
    | None ->
      if base <> cur then
        note "%s.%s: %g -> %g (informational gauge; not gated)" label name
          base cur
    | Some dir ->
      incr compared;
      let band = (Float.abs base *. gauge_tol) +. min_gauge_delta in
      let worse, better =
        match dir with
        | `Higher_better -> (cur < base -. band, cur > base +. band)
        | `Lower_better -> (cur > base +. band, cur < base -. band)
      in
      if worse then
        reg "%s.%s: %g -> %g (%s, tolerance %.0f%%)" label name base cur
          (match dir with
          | `Higher_better -> "lower is worse"
          | `Lower_better -> "higher is worse")
          (100.0 *. gauge_tol)
      else if better then imp "%s.%s: %g -> %g" label name base cur
  in
  let both_sides label b_fields c_fields per_key =
    List.iter
      (fun (k, bv) ->
        match List.assoc_opt k c_fields with
        | Some cv -> per_key k bv cv
        | None -> note "%s.%s: present only in baseline" label k)
      b_fields;
    List.iter
      (fun (k, _) ->
        if not (List.mem_assoc k b_fields) then
          note "%s.%s: present only in current" label k)
      c_fields
  in
  (* telemetry dumps: timers + counters *)
  (match (Json.member "timers" baseline, Json.member "timers" current) with
  | Some bt, Some ct ->
    both_sides "timers" (fields_of bt) (fields_of ct) (fun k bv cv ->
        match (num_field "mean_s" bv, num_field "mean_s" cv) with
        | Some b, Some c -> check_latency ("timer " ^ k) b c
        | _ -> ())
  | _ -> ());
  (match (Json.member "counters" baseline, Json.member "counters" current) with
  | Some bc, Some cc ->
    both_sides "counters" (fields_of bc) (fields_of cc) (fun k bv cv ->
        match (Json.to_num bv, Json.to_num cv) with
        | Some b, Some c -> check_qor "counter" k b c
        | _ -> ())
  | _ -> ());
  (match (Json.member "gauges" baseline, Json.member "gauges" current) with
  | Some bg, Some cg ->
    both_sides "gauges" (fields_of bg) (fields_of cg) (fun k bv cv ->
        match (Json.to_num bv, Json.to_num cv) with
        | Some b, Some c -> check_gauge "gauge" k b c
        | _ -> ())
  | _ -> ());
  (* flow QoR reports: stages with latency + metrics *)
  (match (Json.member "stages" baseline, Json.member "stages" current) with
  | Some (Json.Arr bs), Some (Json.Arr cs) ->
    let stage_name s =
      Option.value ~default:"?" (Option.bind (Json.member "stage" s) Json.to_str)
    in
    let cur_stages = List.map (fun s -> (stage_name s, s)) cs in
    List.iter
      (fun bstage ->
        let name = stage_name bstage in
        match List.assoc_opt name cur_stages with
        | None -> note "stage %s: missing from current report" name
        | Some cstage ->
          (match (num_field "latency_s" bstage, num_field "latency_s" cstage)
           with
          | Some b, Some c -> check_latency ("stage " ^ name) b c
          | _ -> ());
          (match (Json.member "metrics" bstage, Json.member "metrics" cstage)
           with
          | Some bm, Some cm ->
            both_sides ("stage " ^ name) (fields_of bm) (fields_of cm)
              (fun k bv cv ->
                match (Json.to_num bv, Json.to_num cv) with
                | Some b, Some c -> check_qor ("stage " ^ name) k b c
                | _ -> ())
          | _ -> ()))
      bs
  | _ -> ());
  {
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    notes = List.rev !notes;
    compared = !compared;
  }

let render v =
  let b = Buffer.create 512 in
  let section title lines =
    if lines <> [] then begin
      Buffer.add_string b (title ^ ":\n");
      List.iter (fun l -> Buffer.add_string b ("  " ^ l ^ "\n")) lines
    end
  in
  section "REGRESSIONS" v.regressions;
  section "improvements" v.improvements;
  section "notes" v.notes;
  Buffer.add_string b
    (Printf.sprintf "%d gated comparison(s): %d regression(s), %d improvement(s)\n"
       v.compared
       (List.length v.regressions)
       (List.length v.improvements));
  Buffer.contents b
