lib/place/quadratic.ml: Array Hashtbl List Pnet Vc_linalg
