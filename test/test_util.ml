open Helpers
module Heap = Vc_util.Heap
module Union_find = Vc_util.Union_find
module Rng = Vc_util.Rng
module Stats = Vc_util.Stats
module Tok = Vc_util.Tok

(* ---------------------------- heap ---------------------------- *)

let heap_tests =
  [
    tc "empty heap" (fun () ->
        let h = Heap.create ~cmp:compare in
        check Alcotest.bool "is_empty" true (Heap.is_empty h);
        check Alcotest.(option int) "pop" None (Heap.pop h);
        check Alcotest.(option int) "peek" None (Heap.peek h));
    tc "pop order" (fun () ->
        let h = Heap.of_list ~cmp:compare [ 5; 1; 4; 1; 3 ] in
        check Alcotest.(list int) "sorted" [ 1; 1; 3; 4; 5 ]
          (Heap.to_sorted_list h));
    tc "peek is min" (fun () ->
        let h = Heap.of_list ~cmp:compare [ 9; 2; 7 ] in
        check Alcotest.(option int) "peek" (Some 2) (Heap.peek h);
        check Alcotest.int "length unchanged" 3 (Heap.length h));
    tc "pop_exn on empty raises" (fun () ->
        let h = Heap.create ~cmp:compare in
        Alcotest.check_raises "raises"
          (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
            ignore (Heap.pop_exn h)));
    tc "custom comparison (max-heap)" (fun () ->
        let h = Heap.of_list ~cmp:(fun a b -> compare b a) [ 1; 5; 3 ] in
        check Alcotest.(option int) "max first" (Some 5) (Heap.pop h));
    tc "clear" (fun () ->
        let h = Heap.of_list ~cmp:compare [ 1; 2 ] in
        Heap.clear h;
        check Alcotest.bool "emptied" true (Heap.is_empty h));
    prop "heap sort agrees with List.sort"
      QCheck.(list int)
      (fun xs ->
        Heap.to_sorted_list (Heap.of_list ~cmp:compare xs)
        = List.sort compare xs);
    prop "interleaved push/pop maintains order"
      QCheck.(pair (list small_int) (list small_int))
      (fun (a, b) ->
        let h = Heap.of_list ~cmp:compare a in
        let first = Heap.pop h in
        List.iter (Heap.push h) b;
        let rest = Heap.to_sorted_list h in
        match (first, List.sort compare a) with
        | None, [] -> rest = List.sort compare b
        | Some x, m :: a_rest ->
          (* popped the min of [a]; remainder is the rest of [a] plus [b] *)
          x = m && rest = List.sort compare (a_rest @ b)
        | None, _ :: _ | Some _, [] -> false);
  ]

(* ------------------------- union-find ------------------------- *)

let union_find_tests =
  [
    tc "singletons" (fun () ->
        let u = Union_find.create 4 in
        check Alcotest.int "count" 4 (Union_find.count u);
        check Alcotest.bool "not same" false (Union_find.same u 0 3));
    tc "union merges" (fun () ->
        let u = Union_find.create 4 in
        Union_find.union u 0 1;
        Union_find.union u 2 3;
        check Alcotest.int "count" 2 (Union_find.count u);
        check Alcotest.bool "0~1" true (Union_find.same u 0 1);
        check Alcotest.bool "0!~2" false (Union_find.same u 0 2);
        Union_find.union u 1 2;
        check Alcotest.bool "transitive" true (Union_find.same u 0 3);
        check Alcotest.int "count" 1 (Union_find.count u));
    tc "idempotent union" (fun () ->
        let u = Union_find.create 3 in
        Union_find.union u 0 1;
        Union_find.union u 1 0;
        check Alcotest.int "count" 2 (Union_find.count u));
    prop "count = n - distinct merges"
      QCheck.(list (pair (int_bound 19) (int_bound 19)))
      (fun pairs ->
        let u = Union_find.create 20 in
        List.iter (fun (a, b) -> Union_find.union u a b) pairs;
        (* model with naive component labels *)
        let label = Array.init 20 (fun i -> i) in
        let relabel a b =
          let la = label.(a) and lb = label.(b) in
          if la <> lb then
            Array.iteri (fun i l -> if l = lb then label.(i) <- la) label
        in
        List.iter (fun (a, b) -> relabel a b) pairs;
        let distinct =
          Array.to_list label |> List.sort_uniq compare |> List.length
        in
        Union_find.count u = distinct);
  ]

(* ----------------------------- rng ----------------------------- *)

let rng_tests =
  [
    tc "deterministic from seed" (fun () ->
        let a = Rng.create 42 and b = Rng.create 42 in
        let xs g = List.init 20 (fun _ -> Rng.int g 1000) in
        check Alcotest.(list int) "same stream" (xs a) (xs b));
    tc "different seeds differ" (fun () ->
        let a = Rng.create 1 and b = Rng.create 2 in
        let xs g = List.init 20 (fun _ -> Rng.int g 1000000) in
        check Alcotest.bool "streams differ" true (xs a <> xs b));
    tc "copy forks the stream" (fun () ->
        let a = Rng.create 7 in
        ignore (Rng.int a 10);
        let b = Rng.copy a in
        check Alcotest.int "same next" (Rng.int a 1000) (Rng.int b 1000));
    tc "int bounds" (fun () ->
        let g = Rng.create 3 in
        for _ = 1 to 1000 do
          let v = Rng.int g 7 in
          if v < 0 || v >= 7 then Alcotest.fail "out of range"
        done);
    tc "int rejects non-positive bound" (fun () ->
        let g = Rng.create 3 in
        Alcotest.check_raises "raises"
          (Invalid_argument "Rng.int: bound must be positive") (fun () ->
            ignore (Rng.int g 0)));
    tc "float bounds" (fun () ->
        let g = Rng.create 5 in
        for _ = 1 to 1000 do
          let v = Rng.float g 2.5 in
          if v < 0.0 || v >= 2.5 then Alcotest.fail "out of range"
        done);
    tc "bernoulli extremes" (fun () ->
        let g = Rng.create 11 in
        for _ = 1 to 100 do
          if Rng.bernoulli g 0.0 then Alcotest.fail "p=0 fired";
          if not (Rng.bernoulli g 1.0) then Alcotest.fail "p=1 missed"
        done);
    tc "gaussian moments" (fun () ->
        let g = Rng.create 13 in
        let xs = List.init 20000 (fun _ -> Rng.gaussian g ~mu:5.0 ~sigma:2.0) in
        let mean = Stats.mean xs in
        let sd = Stats.stddev xs in
        check Alcotest.bool "mean near 5" true (abs_float (mean -. 5.0) < 0.1);
        check Alcotest.bool "sd near 2" true (abs_float (sd -. 2.0) < 0.1));
    tc "shuffle is a permutation" (fun () ->
        let g = Rng.create 17 in
        let arr = Array.init 50 (fun i -> i) in
        Rng.shuffle g arr;
        let sorted = Array.copy arr in
        Array.sort compare sorted;
        check Alcotest.(array int) "permutation" (Array.init 50 (fun i -> i))
          sorted);
    tc "choose_weighted respects zero-ish weights" (fun () ->
        let g = Rng.create 19 in
        for _ = 1 to 200 do
          let v = Rng.choose_weighted g [ ("a", 1.0); ("b", 0.000001) ] in
          ignore v
        done;
        (* heavily skewed: 'a' must dominate *)
        let g = Rng.create 23 in
        let a_count = ref 0 in
        for _ = 1 to 1000 do
          if Rng.choose_weighted g [ ("a", 0.99); ("b", 0.01) ] = "a" then
            incr a_count
        done;
        check Alcotest.bool "skew respected" true (!a_count > 900));
    tc "split independence" (fun () ->
        let a = Rng.create 29 in
        let b = Rng.split a in
        let xs = List.init 10 (fun _ -> Rng.int a 100) in
        let ys = List.init 10 (fun _ -> Rng.int b 100) in
        check Alcotest.bool "streams differ" true (xs <> ys));
  ]

(* ---------------------------- stats ---------------------------- *)

let stats_tests =
  [
    tc "mean" (fun () ->
        check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]));
    tc "stddev" (fun () ->
        check (Alcotest.float 1e-9) "sd" 2.0
          (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ]));
    tc "percentile" (fun () ->
        let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
        check (Alcotest.float 1e-9) "median" 50.0 (Stats.percentile xs 50.0);
        check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile xs 100.0);
        check (Alcotest.float 1e-9) "p1" 1.0 (Stats.percentile xs 1.0));
    tc "min max" (fun () ->
        check (Alcotest.float 1e-9) "min" (-2.0) (Stats.minimum [ 3.0; -2.0 ]);
        check (Alcotest.float 1e-9) "max" 3.0 (Stats.maximum [ 3.0; -2.0 ]));
    tc "empty data rejected" (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Stats.mean: empty data")
          (fun () -> ignore (Stats.mean [])));
    tc "histogram covers all points" (fun () ->
        let xs = List.init 100 (fun i -> float_of_int i) in
        let h = Stats.histogram ~bins:10 xs in
        let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
        check Alcotest.int "all binned" 100 total;
        check Alcotest.int "bin count" 10 (Array.length h));
    tc "bar proportionality" (fun () ->
        check Alcotest.string "half" "#####" (Stats.bar ~width:10 5.0 10.0);
        check Alcotest.string "zero" "" (Stats.bar ~width:10 0.0 10.0);
        check Alcotest.string "clamped" "##########"
          (Stats.bar ~width:10 20.0 10.0));
  ]

(* ----------------------------- tok ----------------------------- *)

let tok_tests =
  [
    tc "split_words" (fun () ->
        check Alcotest.(list string) "basic" [ "a"; "bb"; "c" ]
          (Tok.split_words "  a\tbb  c "));
    tc "split_words empty" (fun () ->
        check Alcotest.(list string) "empty" [] (Tok.split_words "   "));
    tc "strip_comment" (fun () ->
        check Alcotest.string "stripped" "x = 1 "
          (Tok.strip_comment ~comment:'#' "x = 1 # note"));
    tc "logical_lines joins continuations" (fun () ->
        check Alcotest.(list string) "joined" [ "a b c"; "d" ]
          (Tok.logical_lines "a \\\nb \\\nc\nd\n"));
    tc "logical_lines strips comments and blanks" (fun () ->
        check Alcotest.(list string) "clean" [ "keep" ]
          (Tok.logical_lines "# all comment\n\nkeep # trailing\n"));
    tc "parse_int error names context" (fun () ->
        match Tok.parse_int ~context:"myctx" "zzz" with
        | exception Failure msg ->
          check Alcotest.bool "context present" true
            (String.length msg >= 5 && String.sub msg 0 5 = "myctx")
        | _ -> Alcotest.fail "expected failure");
    tc "parse_float accepts ints" (fun () ->
        check (Alcotest.float 1e-9) "int literal" 3.0
          (Tok.parse_float ~context:"c" "3"));
  ]

(* -------------------------- trace_ctx -------------------------- *)

module Trace_ctx = Vc_util.Trace_ctx

let trace_ctx_tests =
  [
    tc "minted ids are well-formed and seeded deterministically" (fun () ->
        let id = Trace_ctx.mint (Rng.create 99) in
        check Alcotest.int "length" Trace_ctx.id_length (String.length id);
        check Alcotest.bool "valid" true (Trace_ctx.is_valid_id id);
        check Alcotest.string "same generator state, same id" id
          (Trace_ctx.mint (Rng.create 99)));
    tc "mint_deterministic is a pure function of (seed, seq)" (fun () ->
        let a = Trace_ctx.mint_deterministic ~seed:2013 ~seq:7 in
        check Alcotest.string "replayable" a
          (Trace_ctx.mint_deterministic ~seed:2013 ~seq:7);
        check Alcotest.bool "seq matters" true
          (a <> Trace_ctx.mint_deterministic ~seed:2013 ~seq:8);
        check Alcotest.bool "seed matters" true
          (a <> Trace_ctx.mint_deterministic ~seed:2014 ~seq:7);
        (* a replay's ids must not collide across a realistic range *)
        let seen = Hashtbl.create 4096 in
        for seq = 0 to 4095 do
          Hashtbl.replace seen
            (Trace_ctx.mint_deterministic ~seed:2013 ~seq) ()
        done;
        check Alcotest.int "no collisions over 4096 seqs" 4096
          (Hashtbl.length seen));
    tc "is_valid_id admits 4-64 lowercase hex, nothing else" (fun () ->
        List.iter
          (fun (id, expect) ->
            check Alcotest.bool id expect (Trace_ctx.is_valid_id id))
          [
            ("deadbeef", true); ("abcd", true); (String.make 64 'a', true);
            ("abc", false); (String.make 65 'a', false); ("", false);
            ("DEADBEEF", false); ("dead beef", false); ("xyzt", false);
            ("00c0ffee00c0ffee", true);
          ]);
    tc "of_id validates; make does not" (fun () ->
        (match Trace_ctx.of_id "NotHex!" with
        | None -> ()
        | Some _ -> Alcotest.fail "invalid id accepted");
        match Trace_ctx.of_id ~parent:"beefbeef" "deadbeef" with
        | Some t ->
          check Alcotest.string "id" "deadbeef" (Trace_ctx.id t);
          check
            Alcotest.(option string)
            "parent" (Some "beefbeef") (Trace_ctx.parent t);
          check
            Alcotest.(list (pair string string))
            "attrs carry both"
            [ ("trace_id", "deadbeef"); ("trace_parent", "beefbeef") ]
            (Trace_ctx.to_attrs t)
        | None -> Alcotest.fail "valid id rejected");
    tc "phases accumulate in order, clamped non-negative" (fun () ->
        let t = Trace_ctx.make "deadbeef" in
        check Alcotest.(list (pair string (float 0.0))) "empty" []
          (Trace_ctx.phases t);
        Trace_ctx.record_phase t "queue" 0.25;
        Trace_ctx.record_phase t "cache" (-1.0);
        Trace_ctx.record_phase t "execute" 0.5;
        check
          Alcotest.(list (pair string (float 1e-9)))
          "oldest first, negative clamped"
          [ ("queue", 0.25); ("cache", 0.0); ("execute", 0.5) ]
          (Trace_ctx.phases t);
        check (Alcotest.float 1e-9) "total" 0.75 (Trace_ctx.phase_total t);
        check
          Alcotest.(list (pair string string))
          "phase attrs"
          [
            ("phase.queue", "0.250000"); ("phase.cache", "0.000000");
            ("phase.execute", "0.500000");
          ]
          (Trace_ctx.phase_attrs t));
    tc "with_current installs, nests and restores the ambient slot"
      (fun () ->
        check Alcotest.bool "empty outside requests" true
          (Trace_ctx.current () = None);
        check
          Alcotest.(list (pair string string))
          "no ambient attrs outside" [] (Trace_ctx.ambient_attrs ());
        (* a no-op, not an error, outside any request *)
        Trace_ctx.record_current_phase "cache" 1.0;
        let outer = Trace_ctx.make "deadbeef" in
        let inner = Trace_ctx.make "beefbeef" in
        Trace_ctx.with_current outer (fun () ->
            check Alcotest.bool "outer installed" true
              (Trace_ctx.current () = Some outer);
            Trace_ctx.with_current inner (fun () ->
                check Alcotest.bool "inner shadows" true
                  (Trace_ctx.current () = Some inner);
                Trace_ctx.record_current_phase "execute" 0.125);
            check Alcotest.bool "outer restored" true
              (Trace_ctx.current () = Some outer);
            check
              Alcotest.(list (pair string string))
              "ambient attrs read the installed context"
              [ ("trace_id", "deadbeef") ]
              (Trace_ctx.ambient_attrs ()));
        check Alcotest.bool "cleared after" true (Trace_ctx.current () = None);
        check
          Alcotest.(list (pair string (float 1e-9)))
          "record_current_phase hit the installed context"
          [ ("execute", 0.125) ]
          (Trace_ctx.phases inner);
        (* restoration survives an escaping exception *)
        (try
           Trace_ctx.with_current outer (fun () -> failwith "boom")
         with Failure _ -> ());
        check Alcotest.bool "restored after raise" true
          (Trace_ctx.current () = None));
    tc "each domain has its own ambient slot" (fun () ->
        let t = Trace_ctx.make "deadbeef" in
        Trace_ctx.with_current t (fun () ->
            let other =
              Domain.spawn (fun () -> Trace_ctx.current () = None)
            in
            check Alcotest.bool "spawned domain starts empty" true
              (Domain.join other);
            check Alcotest.bool "this domain unaffected" true
              (Trace_ctx.current () = Some t)));
  ]

(* ----------------------------- json ---------------------------- *)

module Json = Vc_util.Json

let json_tests =
  [
    tc "parses scalars, arrays and nested objects" (fun () ->
        let j = Json.parse {| {"a": [1, -2.5, true, null], "b": {"c": "s"}} |} in
        (match Json.member "a" j with
        | Some (Json.Arr [ Json.Num 1.0; Json.Num -2.5; Json.Bool true; Json.Null ]) -> ()
        | _ -> Alcotest.fail "array mismatch");
        match Option.bind (Json.member "b" j) (Json.member "c") with
        | Some (Json.Str "s") -> ()
        | _ -> Alcotest.fail "nested member mismatch");
    tc "string escapes round-trip through str and parse" (fun () ->
        let original = "line\nwith \"quotes\", tab\t and backslash \\" in
        match Json.parse (Json.str original) with
        | Json.Str s -> check Alcotest.string "round-trip" original s
        | _ -> Alcotest.fail "not a string");
    tc "unicode escapes decode to UTF-8" (fun () ->
        match Json.parse {| "é" |} with
        | Json.Str s -> check Alcotest.string "e-acute" "\xc3\xa9" s
        | _ -> Alcotest.fail "not a string");
    tc "scientific notation and exponents parse" (fun () ->
        check Alcotest.bool "1e3" true (Json.parse "1e3" = Json.Num 1000.0);
        check Alcotest.bool "-2.5E-1" true
          (Json.parse "-2.5E-1" = Json.Num (-0.25)));
    tc "trailing garbage is rejected with a position" (fun () ->
        match Json.parse "{} x" with
        | exception Failure msg ->
          check Alcotest.bool "position in message" true
            (String.length msg > 0)
        | _ -> Alcotest.fail "expected failure");
    tc "parse_result reports malformed input as Error" (fun () ->
        check Alcotest.bool "error" true
          (match Json.parse_result "{\"unterminated\"" with
          | Error _ -> true
          | Ok _ -> false));
    tc "emitters produce parseable documents" (fun () ->
        let doc =
          Json.obj
            [
              ("name", Json.str "k\"v");
              ("n", Json.num 1.5);
              ("i", Json.int 42);
              ("l", Json.arr [ Json.int 1; Json.int 2 ]);
            ]
        in
        let j = Json.parse doc in
        check Alcotest.bool "name" true
          (Json.member "name" j = Some (Json.Str "k\"v"));
        check Alcotest.bool "i" true (Json.member "i" j = Some (Json.Num 42.0));
        check Alcotest.bool "l" true
          (Json.member "l" j = Some (Json.Arr [ Json.Num 1.0; Json.Num 2.0 ])));
    tc "member and to_num accessors" (fun () ->
        let j = Json.parse {| {"x": 3.5} |} in
        check Alcotest.(option (float 0.0)) "x" (Some 3.5)
          (Option.bind (Json.member "x" j) Json.to_num);
        check Alcotest.bool "missing member" true (Json.member "y" j = None);
        check Alcotest.bool "to_str on num" true
          (Json.to_str (Json.Num 1.0) = None));
  ]

let () =
  Alcotest.run "util"
    [
      ("heap", heap_tests);
      ("union_find", union_find_tests);
      ("rng", rng_tests);
      ("stats", stats_tests);
      ("tok", tok_tests);
      ("trace_ctx", trace_ctx_tests);
      ("json", json_tests);
    ]
