(* vcload: open-loop replay load generator for vcserve.

   Usage: vcload [--stats] [--trace FILE] [--journal FILE]
                 [--metrics-port N] -port N [-host H] [-clients N]
                 [-rps R] [-duration S] [-participants N] [-seed N]
                 [-variants N] [-resubmit P] [-spike-at F] [-spike-len F]
                 [-spike-x F] [-no-spike] [-time-scale F]
                 [-sample-interval S] [-report FILE] [-shutdown]

   Derives a submission trace from the cohort model (Mooc.Trace): the
   session population is the cohort's tried-software stage for
   -participants registered participants, the tool mix is the Fig. 4
   portal mix, -resubmit of the uploads repeat a popular input (the
   cache-hit-dominant MOOC pattern), and a -spike-x deadline burst
   covers [-spike-at, -spike-at + -spike-len] as fractions of the run.
   The trace is replayed over TCP against vcserve -listen from
   -clients domains at the stated offered load, open-loop: send times
   come from the trace, and latency is measured from the scheduled
   send time, so a saturated server cannot hide its queueing delay.

   The run prints per-outcome latency percentiles and the shed rate,
   emits one journal event per request (component "vcload" - feed the
   --journal file to vcstat summary), and with -report writes the
   machine-readable report JSON. -shutdown sends SHUTDOWN when the
   replay finishes - used by CI to stop the server it spawned. *)

module Trace = Vc_mooc.Trace
module Loadgen = Vc_mooc.Loadgen
module Wire = Vc_mooc.Wire

let usage () =
  prerr_endline
    "usage: vcload [--stats] [--trace FILE] [--journal FILE] \
     [--metrics-port N]\n\
    \              -port N [-host H] [-clients N] [-rps R] [-duration S]\n\
    \              [-participants N] [-seed N] [-variants N] [-resubmit P]\n\
    \              [-spike-at F] [-spike-len F] [-spike-x F] [-no-spike]\n\
    \              [-time-scale F] [-sample-interval S] [-report FILE] \
     [-shutdown]";
  exit 2

type options = {
  host : string;
  port : int option;
  clients : int;
  rps : float;
  duration : float;
  participants : int;
  seed : int;
  variants : int;
  resubmit : float;
  spike : Trace.spike option;
  time_scale : float;
  report_file : string option;
  shutdown : bool;
  sample_interval : float;
}

let default_options =
  {
    host = "127.0.0.1";
    port = None;
    clients = 4;
    rps = 200.0;
    duration = 10.0;
    participants = 17_500;
    seed = 2013;
    variants = 64;
    resubmit = 0.8;
    spike = Some Trace.default_spike;
    time_scale = 1.0;
    report_file = None;
    shutdown = false;
    sample_interval = Vc_util.Timeseries.default_interval ();
  }

let parse_args argv =
  let int_of s = match int_of_string_opt s with Some n -> n | None -> usage () in
  let float_of s =
    match float_of_string_opt s with Some f -> f | None -> usage ()
  in
  let spike_of o =
    match o.spike with Some s -> s | None -> Trace.default_spike
  in
  let rec go o = function
    | [] -> o
    | "-host" :: h :: rest -> go { o with host = h } rest
    | "-port" :: p :: rest -> go { o with port = Some (int_of p) } rest
    | "-clients" :: n :: rest -> go { o with clients = int_of n } rest
    | "-rps" :: r :: rest -> go { o with rps = float_of r } rest
    | "-duration" :: s :: rest -> go { o with duration = float_of s } rest
    | "-participants" :: n :: rest ->
      go { o with participants = int_of n } rest
    | "-seed" :: n :: rest -> go { o with seed = int_of n } rest
    | "-variants" :: n :: rest -> go { o with variants = int_of n } rest
    | "-resubmit" :: p :: rest -> go { o with resubmit = float_of p } rest
    | "-spike-at" :: f :: rest ->
      go
        { o with spike = Some { (spike_of o) with Trace.sp_start = float_of f } }
        rest
    | "-spike-len" :: f :: rest ->
      go { o with spike = Some { (spike_of o) with Trace.sp_len = float_of f } }
        rest
    | "-spike-x" :: f :: rest ->
      go
        { o with
          spike = Some { (spike_of o) with Trace.sp_factor = float_of f }
        }
        rest
    | "-no-spike" :: rest -> go { o with spike = None } rest
    | "-time-scale" :: f :: rest -> go { o with time_scale = float_of f } rest
    | "-sample-interval" :: s :: rest ->
      go { o with sample_interval = float_of s } rest
    | "-report" :: f :: rest -> go { o with report_file = Some f } rest
    | "-shutdown" :: rest -> go { o with shutdown = true } rest
    | _ -> usage ()
  in
  go default_options (List.tl (Array.to_list argv))

let () =
  let argv = Vc_util.Telemetry.cli ~server:true Sys.argv in
  let o = parse_args argv in
  let port = match o.port with Some p -> p | None -> usage () in
  let params =
    { Vc_mooc.Cohort.paper_params with Vc_mooc.Cohort.registered = o.participants }
  in
  let spec =
    Trace.of_cohort ~seed:o.seed ~duration_s:o.duration ~rate_rps:o.rps
      ~variants:o.variants ~resubmit:o.resubmit ~spike:o.spike params
  in
  Printf.eprintf
    "vcload: replaying ~%d submission(s) (%.0f rps base over %.1f s, %d \
     session(s)) against %s:%d with %d client(s)\n\
     vcload: trace ids: seed %d, %s\n\
     %!"
    (Trace.expected_items spec)
    spec.Trace.tr_rate_rps spec.Trace.tr_duration_s spec.Trace.tr_sessions
    o.host port o.clients o.seed Vc_util.Trace_ctx.scheme;
  let config =
    {
      Loadgen.lg_host = o.host;
      lg_port = port;
      lg_clients = o.clients;
      lg_spec = spec;
      lg_time_scale = o.time_scale;
    }
  in
  let sampler =
    Vc_util.Timeseries.Sampler.start ~interval:o.sample_interval
      ~sources:Vc_util.Timeseries.client_sources ()
  in
  let report =
    try Loadgen.run config
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "vcload: cannot reach %s:%d: %s\n%!" o.host port
        (Unix.error_message e);
      exit 1
  in
  Loadgen.set_slo_gauges report;
  print_string (Loadgen.render_report report);
  (match o.report_file with
  | None -> ()
  | Some file ->
    Out_channel.with_open_text file (fun oc ->
        Out_channel.output_string oc (Loadgen.report_to_json report);
        Out_channel.output_char oc '\n');
    Printf.eprintf "vcload: wrote %s\n%!" file);
  if o.shutdown then begin
    match Wire.Client.connect ~host:o.host ~port () with
    | conn ->
      Wire.Client.shutdown_server conn;
      Wire.Client.close conn
    | exception Unix.Unix_error _ -> ()
  end;
  Vc_util.Timeseries.Sampler.stop sampler;
  Vc_util.Journal.flush ();
  if report.Loadgen.rp_total = 0 || report.Loadgen.rp_errors > 0 then exit 1
