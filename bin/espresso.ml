(* espresso: two-level minimization of a PLA file.
   Usage: espresso [-exact|-single-pass|-joint] [--stats] [--trace FILE] [--journal FILE] [--metrics-port N]
          [pla-file] *)

let usage () =
  prerr_endline
    "usage: espresso [-exact|-single-pass|-joint] [--stats] [--trace FILE] [--journal FILE] [--metrics-port N] \
     [pla-file]";
  exit 2

let () =
  let argv = Vc_util.Telemetry.cli Sys.argv in
  let mode = ref `Full and path = ref None in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "-exact" -> mode := `Exact
        | "-single-pass" -> mode := `Single
        | "-joint" -> mode := `Joint
        | _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
        | _ -> path := Some arg)
    argv;
  let text =
    match !path with
    | None -> In_channel.input_all stdin
    | Some p -> In_channel.with_open_text p In_channel.input_all
  in
  match Vc_two_level.Pla.parse text with
  | exception Failure msg ->
    prerr_endline ("espresso: " ^ msg);
    exit 1
  | pla ->
    let minimized =
      Vc_util.Telemetry.timed_span "espresso" @@ fun () ->
      match !mode with
      | `Full -> Vc_two_level.Espresso.minimize_pla pla
      | `Single -> Vc_two_level.Espresso.minimize_pla ~single_pass:true pla
      | `Joint ->
        Vc_two_level.Multi.to_pla pla (Vc_two_level.Multi.minimize pla)
      | `Exact ->
        let on_sets =
          Array.mapi
            (fun j on ->
              Vc_two_level.Qm.minimize_cover ~on
                ~dc:pla.Vc_two_level.Pla.dc_sets.(j))
            pla.Vc_two_level.Pla.on_sets
        in
        { pla with Vc_two_level.Pla.on_sets }
    in
    print_string (Vc_two_level.Pla.to_string minimized)
