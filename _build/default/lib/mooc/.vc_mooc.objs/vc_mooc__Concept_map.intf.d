lib/mooc/concept_map.mli:
