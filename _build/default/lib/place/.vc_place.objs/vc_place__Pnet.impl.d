lib/place/pnet.ml: Array Buffer Float Hashtbl List Printf String Vc_util
