(* vcfront: a consistent-hash shard router in front of N vcserve
   backends.

   Usage: vcfront [--stats] [--journal FILE] [--journal-segments BYTES]
                  [--metrics-port N] -listen PORT
                  -backend HOST:PORT [-backend HOST:PORT ...]
                  [-check-interval S] [-retries N] [-replicas N]

   Speaks the same Mooc.Wire line protocol as vcserve on the front
   socket and forwards each TOOL submission to a backend chosen by
   consistent-hashing the request's session id (Vc_util.Hashring), so
   a given participant always lands on the same vcserve shard - which
   is what makes each shard's result cache and rate-limit bucket
   effective. LIST and tool-name resolution are answered locally (the
   tool set is identical everywhere by construction).

   A health-prober domain checks every backend each -check-interval
   seconds over the versioned wire handshake (HELLO 2, then PING) and
   removes dead backends from the ring; the keys they owned remap to
   the survivors while everyone else's mapping is untouched - the
   consistent-hash property. A submission that hits a dead backend is
   retried transparently against the re-routed ring (tools are pure,
   so a replayed submission is idempotent); only when every retry is
   exhausted does the client see ERR overloaded. Recovered backends
   rejoin the ring at the next probe.

   Observability: front.routed / front.retries / front.failover
   counters, the front.backends.up gauge, and front.backend.up /
   front.backend.down journal events (the down transition at WARN). *)

module Portal = Vc_mooc.Portal
module Wire = Vc_mooc.Wire
module Hashring = Vc_util.Hashring
module J = Vc_util.Journal
module T = Vc_util.Telemetry

let usage () =
  prerr_endline
    "usage: vcfront [--stats] [--journal FILE] [--journal-segments BYTES]\n\
    \               [--metrics-port N] -listen PORT\n\
    \               -backend HOST:PORT [-backend HOST:PORT ...]\n\
    \               [-check-interval S] [-retries N] [-replicas N]";
  exit 2

(* ------------------------------------------------------------------ *)
(* backends and the ring                                               *)
(* ------------------------------------------------------------------ *)

type backend = {
  b_name : string;  (* "host:port" - the ring key and journal label *)
  b_host : string;
  b_port : int;
  b_up : bool Atomic.t;
}

let backends : backend array ref = ref [||]
let replicas = ref 64

(* The ring is immutable; transitions build a new one from the up
   backends and swap it in, so the hot routing path is one Atomic.get
   and a binary search - no locks. *)
let ring : backend Hashring.t Atomic.t = Atomic.make (Hashring.make [])

let rebuild_ring () =
  let up =
    Array.to_list !backends |> List.filter (fun b -> Atomic.get b.b_up)
  in
  Atomic.set ring
    (Hashring.make ~replicas:!replicas
       (List.map (fun b -> (b.b_name, b)) up));
  T.set_gauge "front.backends.up" (float_of_int (List.length up))

let set_up b up =
  if Atomic.exchange b.b_up up <> up then begin
    rebuild_ring ();
    if up then
      J.emit ~component:"front"
        ~attrs:[ ("backend", b.b_name) ]
        "backend.up"
    else
      J.emit ~severity:J.Warn ~component:"front"
        ~attrs:[ ("backend", b.b_name) ]
        "backend.down";
    (* transitions are rare and operators poll the journal for them *)
    J.flush ()
  end

let parse_backend spec =
  match String.rindex_opt spec ':' with
  | Some i when i > 0 && i < String.length spec - 1 -> (
    let host = String.sub spec 0 i in
    let port = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 ->
      { b_name = spec; b_host = host; b_port = p; b_up = Atomic.make true }
    | _ ->
      Printf.eprintf "vcfront: bad backend port in %S\n" spec;
      exit 2)
  | _ ->
    Printf.eprintf "vcfront: bad backend %S (expected HOST:PORT)\n" spec;
    exit 2

(* ------------------------------------------------------------------ *)
(* per-domain connection cache                                         *)
(* ------------------------------------------------------------------ *)

(* Each connection-handler domain keeps one upstream connection per
   backend, created lazily and dropped on the first error. The cache
   dies with its domain (a handler domain exits when its client
   disconnects), so idle upstream connections never outlive the
   downstream connection they serve. *)
let conns_key :
    (string, Wire.Client.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let get_conn b =
  let tbl = Domain.DLS.get conns_key in
  match Hashtbl.find_opt tbl b.b_name with
  | Some c -> c
  | None ->
    let c = Wire.Client.connect ~host:b.b_host ~port:b.b_port () in
    Hashtbl.replace tbl b.b_name c;
    c

let drop_conn b =
  let tbl = Domain.DLS.get conns_key in
  match Hashtbl.find_opt tbl b.b_name with
  | Some c ->
    Hashtbl.remove tbl b.b_name;
    (try Wire.Client.close c with _ -> ())
  | None -> ()

(* ------------------------------------------------------------------ *)
(* forwarding                                                          *)
(* ------------------------------------------------------------------ *)

let strip_trace status =
  (* the backend echoed our TRACE operand; the front's own responder
     re-adds it, so strip the duplicate *)
  match Wire.trace_of_status status with
  | Some _ -> String.sub status 0 (String.rindex status ' ')
  | None -> status

let reason_of label msg =
  match label with
  | "runaway" -> Portal.Runaway msg
  | "rate_limited" -> Portal.Rate_limited msg
  | "deadline" -> Portal.Deadline_exceeded msg
  | _ -> Portal.Overloaded msg

let outcome_of_reply (status, body) =
  match String.split_on_char ' ' (strip_trace status) with
  | "OK" :: "executed" :: _ -> Portal.Executed body
  | "OK" :: "cache_hit" :: _ -> Portal.Cache_hit body
  | "ERR" :: label :: rest ->
    Portal.Rejected (reason_of label (String.concat " " rest))
  | _ ->
    Portal.Rejected
      (Portal.Overloaded ("unexpected backend reply: " ^ status))

let retries = ref 3

let submit (req : Portal.request) =
  T.incr "front.routed";
  let rec attempt tries =
    match Hashring.find (Atomic.get ring) req.Portal.req_session with
    | None -> Portal.Rejected (Portal.Overloaded "no healthy backends")
    | Some (_, b) -> (
      match
        let conn = get_conn b in
        Wire.Client.submit conn ~session:req.Portal.req_session
          ?trace:req.Portal.req_trace
          ~tool:req.Portal.req_tool.Portal.tool_name req.Portal.req_input
      with
      | reply -> outcome_of_reply reply
      | exception
          ( Failure _ | Sys_error _ | End_of_file
          | Unix.Unix_error _ ) ->
        (* connection-level failure: this backend is gone until the
           prober says otherwise; remap and retry elsewhere *)
        drop_conn b;
        T.incr "front.failover";
        set_up b false;
        if tries > 0 then begin
          T.incr "front.retries";
          (* brief backoff so a restarting backend's listener has a
             chance to come up between attempts *)
          Unix.sleepf (0.05 *. float_of_int (!retries - tries + 1));
          attempt (tries - 1)
        end
        else
          Portal.Rejected
            (Portal.Overloaded ("backend " ^ b.b_name ^ " unavailable")))
  in
  attempt !retries

(* ------------------------------------------------------------------ *)
(* health prober                                                       *)
(* ------------------------------------------------------------------ *)

let probe_backend b =
  match Wire.Client.connect ~host:b.b_host ~port:b.b_port () with
  | exception (Unix.Unix_error _ | Sys_error _ | Failure _) -> false
  | c ->
    let ok =
      try Wire.Client.hello c 2 >= 2 && Wire.Client.ping c
      with Failure _ | Sys_error _ | End_of_file | Unix.Unix_error _ ->
        false
    in
    (try Wire.Client.close c with _ -> ());
    ok

let prober_running = Atomic.make true

let start_prober interval =
  Domain.spawn (fun () ->
      while Atomic.get prober_running do
        Array.iter (fun b -> set_up b (probe_backend b)) !backends;
        Unix.sleepf interval
      done)

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let () =
  let argv = T.cli ~server:true Sys.argv in
  let listen_port = ref None in
  let specs = ref [] in
  let check_interval = ref 1.0 in
  let int_of s =
    match int_of_string_opt s with Some n -> n | None -> usage ()
  in
  let float_of s =
    match float_of_string_opt s with Some f -> f | None -> usage ()
  in
  let rec go = function
    | [] -> ()
    | "-listen" :: p :: rest ->
      listen_port := Some (int_of p);
      go rest
    | "-backend" :: spec :: rest ->
      specs := spec :: !specs;
      go rest
    | "-check-interval" :: s :: rest ->
      let s = float_of s in
      if s <= 0. then usage ();
      check_interval := s;
      go rest
    | "-retries" :: n :: rest ->
      let n = int_of n in
      if n < 0 then usage ();
      retries := n;
      go rest
    | "-replicas" :: n :: rest ->
      let n = int_of n in
      if n < 1 then usage ();
      replicas := n;
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list argv));
  let port = match !listen_port with Some p -> p | None -> usage () in
  if !specs = [] then usage ();
  backends := Array.of_list (List.rev_map parse_backend !specs);
  rebuild_ring ();
  J.emit ~component:"front"
    ~attrs:
      [
        ("backends", string_of_int (Array.length !backends));
        ("replicas", string_of_int !replicas);
      ]
    "front.start";
  let prober = start_prober !check_interval in
  let listener = Wire.listen ~port () in
  (* the test harness parses this line for the bound port *)
  Printf.eprintf "vcfront: listening on %s:%d (%d backend(s))\n%!"
    (Wire.addr listener) (Wire.port listener)
    (Array.length !backends);
  let on_signal _ = Wire.shutdown listener in
  (try
     Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
     Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  Wire.serve listener ~submit;
  if not (Wire.drain_connections listener) then
    prerr_endline "vcfront: timed out waiting for connections to close";
  Atomic.set prober_running false;
  (try Domain.join prober with _ -> ());
  J.emit ~component:"front" "front.stop";
  J.flush ();
  exit 0
