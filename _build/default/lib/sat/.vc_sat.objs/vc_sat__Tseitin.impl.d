lib/sat/tseitin.ml: Array Cnf Hashtbl List Solver Vc_cube
