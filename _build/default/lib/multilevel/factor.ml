module Expr = Vc_cube.Expr

type form =
  | Lit of Algebraic.lit
  | And of form list
  | Or of form list

let rec to_string = function
  | Lit l -> Algebraic.lit_to_string l
  | And [] -> "1"
  | And fs -> String.concat " " (List.map paren_or fs)
  | Or [] -> "0"
  | Or fs -> String.concat " + " (List.map to_string fs)

and paren_or f =
  match f with
  | Or (_ :: _ :: _) -> "(" ^ to_string f ^ ")"
  | Or _ | Lit _ | And _ -> to_string f

let rec literal_count = function
  | Lit _ -> 1
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + literal_count f) 0 fs

let lit_expr (s, pos) = if pos then Expr.Var s else Expr.Not (Expr.Var s)

let rec to_expr = function
  | Lit l -> lit_expr l
  | And [] -> Expr.Const true
  | And (f :: fs) ->
    List.fold_left (fun acc g -> Expr.And (acc, to_expr g)) (to_expr f) fs
  | Or [] -> Expr.Const false
  | Or (f :: fs) ->
    List.fold_left (fun acc g -> Expr.Or (acc, to_expr g)) (to_expr f) fs

let sop_to_expr sop =
  let cube_expr = function
    | [] -> Expr.Const true
    | l :: ls ->
      List.fold_left (fun acc m -> Expr.And (acc, lit_expr m)) (lit_expr l) ls
  in
  match sop with
  | [] -> Expr.Const false
  | c :: cs ->
    List.fold_left (fun acc d -> Expr.Or (acc, cube_expr d)) (cube_expr c) cs

let flatten_and fs =
  List.concat_map (function And gs -> gs | (Lit _ | Or _) as f -> [ f ]) fs

let flatten_or fs =
  List.concat_map (function Or gs -> gs | (Lit _ | And _) as f -> [ f ]) fs

let mk_and fs =
  match flatten_and fs with [ f ] -> f | fs -> And fs

let mk_or fs =
  match flatten_or (List.filter (fun f -> f <> Or []) fs) with
  | [ f ] -> f
  | fs -> Or fs

let rec factor sop =
  let sop = Algebraic.normalize sop in
  match sop with
  | [] -> Or []
  | [ [] ] -> And []
  | [ cube ] -> mk_and (List.map (fun l -> Lit l) cube)
  | _ -> begin
    let divisor =
      match Algebraic.kernel_level0 sop with
      | Some k when k <> sop -> Some k
      | Some _ | None -> begin
        match Algebraic.most_common_literal sop with
        | Some l -> Some [ [ l ] ]
        | None -> None
      end
    in
    match divisor with
    | None ->
      (* no sharing at all: flat SOP *)
      mk_or (List.map (fun cube -> mk_and (List.map (fun l -> Lit l) cube)) sop)
    | Some d -> begin
      let q, r = Algebraic.divide sop d in
      if q = [] then
        mk_or
          (List.map (fun cube -> mk_and (List.map (fun l -> Lit l) cube)) sop)
      else begin
        let fq = factor q and fd = factor d in
        let product = mk_and [ fq; fd ] in
        if r = [] then product else mk_or [ product; factor r ]
      end
    end
  end
