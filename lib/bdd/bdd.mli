(** Reduced Ordered Binary Decision Diagrams, in the style of the
    Brace-Rudell-Bryant package the course's kbdd tool is built on: a
    manager holding a unique table (for canonicity) and an ITE computed
    table (for memoized apply).

    Nodes are integers into the manager's arrays; the constants are
    [zero] and [one]. Canonicity invariant: for any two functions built in
    the same manager under the same variable order, [f = g] (integer
    equality) iff the functions are equal. *)

type man
(** A BDD manager: variable order, unique table, computed table. *)

type t = int
(** A node handle, valid only with the manager that created it. *)

val create : ?cache_size:int -> unit -> man

val zero : t
val one : t

val var : man -> string -> t
(** [var m name] is the function of the named variable, creating the
    variable (at the bottom of the current order) on first use. *)

val ith_var : man -> int -> t
(** [ith_var m i] is variable of index [i], creating indices up to [i] with
    default names ["x<i>"] as needed. *)

val num_vars : man -> int

val var_name : man -> int -> string

val var_index : man -> string -> int option

val mk_not : man -> t -> t
val mk_and : man -> t -> t -> t
val mk_or : man -> t -> t -> t
val mk_xor : man -> t -> t -> t
val mk_nand : man -> t -> t -> t
val mk_nor : man -> t -> t -> t
val mk_imp : man -> t -> t -> t
val mk_iff : man -> t -> t -> t

val mk_ite : man -> t -> t -> t -> t
(** The universal connective: [mk_ite m f g h] = IF f THEN g ELSE h. *)

val restrict : man -> t -> var:int -> value:bool -> t
(** Shannon cofactor with respect to one variable. *)

val compose : man -> t -> var:int -> t -> t
(** [compose m f ~var g] substitutes function [g] for variable [var] in
    [f]. *)

val exists : man -> int list -> t -> t
(** Existential quantification over a set of variable indices. *)

val forall : man -> int list -> t -> t

val support : man -> t -> int list
(** Variable indices [f] depends on, ascending. *)

val size : man -> t -> int
(** Number of distinct internal nodes of [f] (constants excluded). *)

val node_count : man -> int
(** Total live entries ever allocated in the manager's node table. *)

val eval : man -> t -> (int -> bool) -> bool
(** [eval m f env] evaluates under the assignment [env] (by var index). *)

val sat_count : man -> t -> nvars:int -> float
(** Number of satisfying assignments over variables [0..nvars-1]. All of
    [support f] must be below [nvars]. *)

val any_sat : man -> t -> (int * bool) list option
(** Some satisfying partial assignment (unmentioned variables are free),
    or [None] for [zero]. *)

val all_sat : ?limit:int -> man -> t -> (int * bool) list list
(** Cubes (partial assignments) whose union is [f], at most [limit]
    (default 1_000_000). *)

val of_expr : man -> Vc_cube.Expr.t -> t
(** Build a BDD from an expression; variables resolved/created by name. *)

val to_expr : man -> t -> Vc_cube.Expr.t
(** A (multiplexer-structured) expression computing [f]. *)

val of_cover : man -> names:string array -> Vc_cube.Cover.t -> t
(** Build from a cube cover; variable [i] of the cover is [names.(i)]. *)

val gc : man -> roots:t list -> t list
(** Compacting garbage collection: rebuilds the manager keeping only the
    nodes reachable from [roots] and returns the remapped roots (in order).
    All other handles become invalid. *)

val to_dot : man -> ?name:string -> t -> string
(** Graphviz rendering of [f]'s DAG: solid edges for the 1-branch, dashed
    for the 0-branch, boxes for the constants. *)

val cache_stats : man -> int * int
(** (ITE cache hits, misses) since creation - the lectures' motivation for
    the computed table. *)

val stats : unit -> (string * int) list
(** Process-wide cumulative table counters summed over every manager:
    [unique_hits] / [unique_misses] (hash-consing lookups) and
    [ite_hits] / [ite_misses] (computed-table lookups). Registered as
    the {!Vc_util.Telemetry} probe ["bdd"]. *)
