(** Stuck-at test pattern generation - the "test" topic the MOOC's survey
    respondents asked for (Fig. 11), built on this library's own
    verification engines: a fault is injected by forcing a signal constant,
    and any input assignment distinguishing the faulty network from the
    good one (found by the BDD or SAT equivalence checker) is a test. *)

type fault = {
  signal : string;  (** An internal node or primary input. *)
  stuck_at : bool;
}

val fault_to_string : fault -> string
(** e.g. ["n3/0"] for n3 stuck-at-0. *)

val all_faults : Network.t -> fault list
(** Both polarities on every primary input and internal node. *)

val inject : Network.t -> fault -> Network.t
(** A copy of the network with the fault in place (constant node for
    internal signals; inputs get a forced internal alias rewired into the
    fanouts). *)

val test_for :
  ?engine:Equiv.engine -> Network.t -> fault -> (string * bool) list option
(** A test vector detecting the fault (an input assignment on which good
    and faulty outputs differ), or [None] if the fault is undetectable
    (redundant logic). *)

type report = {
  total : int;
  detected : int;
  redundant : int;
  vectors : (fault * (string * bool) list) list;  (** One per detected fault. *)
}

val generate_all : ?engine:Equiv.engine -> Network.t -> report
(** Run {!test_for} on every fault. *)

val coverage : report -> float
(** detected / total, in [0,1]. *)

val compact : Network.t -> report -> (string * bool) list list
(** Greedy test-set compaction: keep a vector only if it detects some
    fault no earlier-kept vector detects (fault simulation by network
    evaluation). *)

val detects : Network.t -> fault -> (string * bool) list -> bool
(** Fault simulation of one vector against one fault. *)
