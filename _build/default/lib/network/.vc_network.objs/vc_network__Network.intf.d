lib/network/network.mli: Vc_cube
