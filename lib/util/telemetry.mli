(** Process-wide instrumentation: named counters, wall-clock timers,
    hierarchical trace spans and pluggable kernel probes, with text and
    JSON renderers.

    This is the observability substrate of the repository (see
    [docs/OBSERVABILITY.md] for a guided tour): [Vc_mooc.Portal] counts
    submissions, cache hits and runaway-guard rejections through it, the
    hot algorithm kernels ([Vc_sat.Solver], [Vc_bdd.Bdd],
    [Vc_route.Maze], [Vc_place.Annealing]) register cumulative-counter
    probes with it, and every binary under [bin/] exposes it through the
    [--stats] and [--trace FILE] flags (see {!cli}).

    All state is global to the process and {e domain-safe}, and the
    write path scales: every domain records counters, timer samples,
    gauge writes and completed spans into its {e own} per-domain cells
    ([Domain.DLS]), so {!Vc_mooc.Server}'s worker domains instrument
    without contending on a shared lock - the steady-state {!incr} /
    {!observe} / {!set_gauge} path is lock-free (an atomic op or a list
    push on domain-owned storage). The read side ({!counter},
    {!timers}, {!report}, {!to_json}, {!to_prometheus}, ...) merges all
    domains' cells on demand: counters sum, timer samples concatenate,
    gauges resolve last-write-wins via a global version stamp, and
    histogram buckets are computed lazily from the merged samples at
    render time. Trace spans nest on a per-domain stack ({!with_span}
    trees never interleave across domains); completed top-level spans
    stay in their domain's cell and are merged (ordered by start time)
    by {!spans}. See [docs/CONCURRENCY.md] for the full model.
    Everything here is plain OCaml + the [unix] library shipped with
    the compiler - no third-party dependencies. *)

(** {1 Counters} *)

val incr : ?by:int -> string -> unit
(** [incr name] adds [by] (default 1) to the named counter, creating it
    at zero on first use. Counter names are flat strings; the convention
    used across the repo is dotted paths such as
    ["portal.kbdd.submits"]. *)

val counter : string -> int
(** Current value of a counter; [0] if it was never incremented. *)

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Timers} *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f ()], records its wall-clock duration as one
    sample of the named timer, and returns (or re-raises) [f]'s
    outcome. *)

val observe : string -> float -> unit
(** Record an externally measured duration (seconds) as a sample. *)

type timer_summary = {
  count : int;  (** Number of recorded samples. *)
  total_s : float;  (** Sum of all samples, seconds. *)
  mean_s : float;
  p50_s : float;  (** Median, nearest-rank ({!Stats.percentile}). *)
  p90_s : float;
  p99_s : float;  (** Tail latency, nearest-rank. *)
  max_s : float;
  stddev_s : float;  (** Population standard deviation ({!Stats.stddev}). *)
}

val timer : string -> timer_summary option
(** Summary of a timer's samples; [None] if no sample was recorded. *)

val timers : unit -> (string * timer_summary) list
(** All timers with at least one sample, sorted by name. *)

(** {1 Histograms}

    A histogram upgrades a timer: {!define_histogram} attaches
    fixed-bucket counts to a timer name, after which every
    {!observe}/{!time} sample on that name feeds both the raw sample
    list (so {!timer} percentiles stay exact) and the buckets (so the
    Prometheus exposition can serve a proper [_bucket] family that
    aggregates across processes). The portal, flow and grader latency
    paths define histograms on their timers at startup. *)

val default_buckets : float list
(** The default latency bucket upper bounds, in seconds: 19 bounds in a
    1-2.5-5 progression from 10 microseconds to 10 seconds. *)

val define_histogram : ?buckets:float list -> string -> unit
(** [define_histogram name] declares fixed buckets for the named timer.
    [buckets] (default {!default_buckets}) are inclusive upper bounds
    and must be strictly increasing; an implicit [+Inf] bucket is always
    present. Samples already recorded on the timer are back-filled into
    the buckets; calling it again for the same name is a no-op (the
    first bucket layout wins).
    @raise Invalid_argument if [buckets] is empty or not strictly
    increasing. *)

type hist_summary = {
  buckets : (float * int) list;
      (** [(upper_bound, cumulative_count)] per declared bucket -
          cumulative as in the Prometheus exposition, each count
          includes all smaller buckets. *)
  hist_sum : float;  (** Sum of all observed values, seconds. *)
  hist_count : int;  (** Total observations, including over-range. *)
}

val histogram : string -> hist_summary option
(** Current bucket state of a defined histogram; [None] if
    {!define_histogram} was never called for the name. *)

val histograms : unit -> (string * hist_summary) list
(** All defined histograms, sorted by name. *)

(** {1 Gauges}

    A gauge is a named value that can go up or down - queue depths,
    cache occupancy. Unlike counters they are set, not incremented. *)

val set_gauge : string -> float -> unit
(** Set the named gauge, creating it on first use. *)

val gauge : string -> float option
(** Current value; [None] if never set. *)

val gauges : unit -> (string * float) list
(** All gauges, sorted by name. *)

(** {1 Trace spans}

    Spans form a tree: a span opened while another is running becomes
    its child. Completed top-level spans are kept (oldest first) until
    {!reset}. *)

type span = {
  span_name : string;
  start_s : float;  (** Clock reading when the span was opened. *)
  duration_s : float;
  attrs : (string * string) list;
      (** User attributes; a span whose body raised also carries an
          [("error", _)] attribute. *)
  children : span list;  (** Oldest first. *)
}

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a new span. The span is
    recorded whether [f] returns or raises; exceptions propagate. *)

val timed_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** {!with_span} and {!time} in one call under the same name - the
    convenience used by the [bin/] tools around their main work. *)

val spans : unit -> span list
(** Completed top-level spans, oldest first. *)

(** {1 Kernel probes}

    A probe is a named thunk returning cumulative [(key, value)]
    counters owned by some subsystem - e.g. the SAT solver's total
    decisions/conflicts/restarts. Probes are pulled (not pushed) each
    time a report is rendered, so registering one is free. *)

val register_probe : string -> (unit -> (string * int) list) -> unit
(** Register (or replace) the named probe. The four hot kernels register
    themselves at module-initialization time under ["sat.solver"],
    ["bdd"], ["route.maze"] and ["place.annealing"]. *)

val probes : unit -> (string * (string * int) list) list
(** Current probe readings, sorted by probe name. *)

(** {1 Renderers} *)

val report : unit -> string
(** Human-readable report: counters, timer summaries (milliseconds),
    probe readings and the number of recorded trace spans. Sections with
    no data are omitted; the probe section always appears once any probe
    is registered. *)

val to_json : unit -> string
(** The same data as {!report} as a JSON object with fields
    ["counters"], ["gauges"], ["timers"] (per-timer objects with
    [count], [total_s], [mean_s], [p50_s], [p90_s], [p99_s], [max_s],
    [stddev_s]), ["histograms"] (per-histogram [buckets]/[sum]/[count]),
    ["probes"] and ["spans"] (the count of top-level spans).
    Machine-readable; [bench/main.ml] writes it to
    [BENCH_portal.json]. *)

val spans_to_json : unit -> string
(** The completed span forest as [{"spans": [...]}]; each span carries
    [name], [start_s], [duration_s], [attrs] and [children]. *)

val to_prometheus : unit -> string
(** The current metric state in the Prometheus text exposition format
    (version 0.0.4), as served on [GET /metrics] by
    {!Metrics_server}. Names are the dotted telemetry names with
    non-alphanumerics mapped to [_] and a [vc_] prefix. Counters and
    probe readings become [counter] families suffixed [_total] (plus
    [vc_journal_events_total] from {!Journal.event_count}); gauges
    become [gauge] families; timers with a defined histogram become
    [histogram] families suffixed [_seconds] with cumulative
    [_bucket{le="..."}] series, an explicit [+Inf] bucket, [_sum] and
    [_count]; remaining timers are rendered as [summary] families with
    exact [quantile="0.5"/"0.9"/"0.99"] series computed from the raw
    samples. *)

(** {1 Control} *)

val reset : unit -> unit
(** Clear counters, gauges, timer samples, histogram definitions and
    recorded spans across {e all} domains' cells. Registered probes and
    the clock survive (their counters live in their own modules). Only
    the calling domain's open-span stack is cleared; other domains own
    theirs. Call while other domains are quiescent (between test cases,
    between bench configurations) - a racing writer may land an update
    in a cell that was already cleared. *)

val set_clock : (unit -> float) -> unit
(** Replace the time source (default [Unix.gettimeofday]) - an alias of
    {!Clock.set}, shared with {!Journal} timestamps - used by tests
    that need deterministic durations. The wall clock is not monotonic,
    so computed timer and span durations clamp negative differences to
    zero. *)

val now : unit -> float
(** Read the installed clock ({!Clock.now}). *)

(** {1 Command-line integration} *)

val cli : ?server:bool -> string array -> string array
(** [cli Sys.argv] strips [--stats], [--trace FILE], [--journal FILE],
    [--journal-segments BYTES] and [--metrics-port N] from an argument
    vector and returns the rest (element 0 preserved). If [--stats] was
    present, the process prints {!report} to stderr at exit; if
    [--trace FILE] was present, it writes {!spans_to_json} to [FILE] at
    exit; if [--journal FILE] was present, every {!Journal} event is
    streamed as JSON Lines - to [FILE] (appending), or, when
    [--journal-segments BYTES] was also given, to a rotated
    [FILE.00000.jsonl]-style segment set with [BYTES]-sized segments
    (see {!Journal.open_jsonl}).
    If [--metrics-port N] was present, a {!Metrics_server} is bound on
    [127.0.0.1:N] immediately (port [0] = ephemeral; the bound address
    is announced on stderr) and, after the tool's own work and the
    other at-exit reports finish, the process stays alive serving
    [GET /metrics] ({!to_prometheus}) and [GET /healthz] until killed.
    With [server:true] (vcserve, vcload) the exporter instead serves
    from a background domain for the whole run - [/varz] and [/readyz]
    answer live while the tool works - and stops at exit instead of
    outliving it.
    Scrapes are counted on the ["metrics.http_requests"] counter and
    the bound port is published as the ["metrics.port"] gauge. Also
    installs the {!Journal.install_crash_handler} flight-recorder dump.
    Every binary under [bin/] routes its arguments through this, so the
    flags work uniformly across the toolset. *)

type cli_options = {
  cli_argv : string array;  (** Arguments with the flags stripped. *)
  cli_stats : bool;
  cli_trace : string option;
  cli_journal : string option;
  cli_journal_segments : int option;
      (** [--journal-segments BYTES]: rotate the journal into
          [BYTES]-sized segments instead of one growing file. *)
  cli_metrics_port : int option;
}

val cli_parse : string array -> cli_options
(** The pure part of {!cli}: strips the flags without installing any
    hook. Exits with code 2 on a [--trace]/[--journal] missing its file
    argument, a [--journal-segments] missing its byte count or given a
    non-positive one, or a [--metrics-port] missing its port or given
    one outside 0-65535. *)
