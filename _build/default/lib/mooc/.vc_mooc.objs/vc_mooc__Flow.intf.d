lib/mooc/flow.mli: Vc_network Vc_place Vc_route Vc_techmap
