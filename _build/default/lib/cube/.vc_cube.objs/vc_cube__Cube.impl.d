lib/cube/cube.ml: Array Bytes Char List Printf String
