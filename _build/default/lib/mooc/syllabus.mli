(** The MOOC's lecture catalogue (Section 2.1 / Fig. 2): 69 short videos
    across 8 instruction weeks plus tool tutorials, about 15 minutes each,
    about 17 hours in total, built from 615 re-authored slides.

    Invariants (checked by tests): 69 videos; total minutes within
    [1000, 1040]; every week non-empty. *)

type video = {
  week : int;  (** 1-8 for topics, 9 for tool tutorials. *)
  index : int;  (** Position within the week, 1-based. *)
  title : string;
  minutes : int;
  slides : int;
}

val videos : video list

val week_titles : (int * string) list
(** The eight topics of Section 2.1 plus the tutorial pseudo-week. *)

val total_videos : int

val total_minutes : int

val total_slides : int
(** 615 - the re-authored slide count the paper reports. *)

val average_minutes : float

val by_week : int -> video list

val render_fig2 : unit -> string
(** ASCII version of Fig. 2: one bar per video, grouped by week. *)
