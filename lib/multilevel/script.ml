module Network = Vc_network.Network
type report = { log : string list; network : Network.t }

let script_rugged =
  String.concat "\n"
    [
      "sweep"; "simplify"; "fx"; "resub"; "sweep"; "eliminate 0"; "simplify";
      "sweep"; "print_stats";
    ]

let stats_line t =
  Printf.sprintf "nodes=%d literals=%d depth=%d" (Network.node_count t)
    (Network.literal_count t) (Network.depth t)

let run network text =
  let t = Network.copy network in
  let log = ref [] in
  let say fmt = Printf.ksprintf (fun s -> log := s :: !log) fmt in
  let exec line =
    match Vc_util.Tok.split_words line with
    | [] -> ()
    | [ "sweep" ] -> say "sweep: removed %d node(s)" (Opt.sweep t)
    | [ "simplify" ] -> say "simplify: saved %d literal(s)" (Opt.simplify t)
    | [ "full_simplify" ] ->
      say "full_simplify: saved %d literal(s) using satisfiability don't-cares"
        (Dc.simplify t)
    | [ "fx" ] ->
      let k = Extract.extract_kernels t in
      let c = Extract.extract_cubes t in
      say "fx: extracted %d kernel(s), %d cube(s)" k c
    | [ "gkx" ] -> say "gkx: extracted %d kernel(s)" (Extract.extract_kernels t)
    | [ "gcx" ] -> say "gcx: extracted %d cube(s)" (Extract.extract_cubes t)
    | [ "resub" ] -> say "resub: %d substitution(s)" (Extract.resubstitute t)
    | [ "eliminate"; k ] ->
      let threshold = Vc_util.Tok.parse_int ~context:"eliminate" k in
      say "eliminate %d: collapsed %d node(s)" threshold
        (Opt.eliminate ~threshold t)
    | [ "collapse"; node ] ->
      if Opt.collapse_node t node then say "collapsed %s" node
      else say "error: cannot collapse %s" node
    | [ "print_stats" ] -> say "%s" (stats_line t)
    | [ "print_factor"; node ] -> begin
      match Network.find_node t node with
      | None -> say "error: unknown node %s" node
      | Some n ->
        let form = Factor.factor (Algebraic.of_node n) in
        say "%s = %s  [%d literal(s)]" node (Factor.to_string form)
          (Factor.literal_count form)
    end
    | cmd :: _ -> say "error: unknown command %s" cmd
  in
  let lines =
    Vc_util.Tok.logical_lines ~comment:'#' ~continuation:false text
  in
  let literals_before = Network.literal_count t in
  List.iter exec lines;
  Vc_util.Journal.emit ~component:"synth"
    ~attrs:
      [
        ("commands", string_of_int (List.length lines));
        ("literals_before", string_of_int literals_before);
        ("literals_after", string_of_int (Network.literal_count t));
        ("nodes", string_of_int (Network.node_count t));
      ]
    "script.done";
  { log = List.rev !log; network = t }
