(* smoke_loadgen: end-to-end check of the replay loop - vcserve over
   TCP, vcload as the client, SIGINT as the shutdown path.
   Usage: smoke_loadgen VCSERVE_EXE VCLOAD_EXE VCSTAT_EXE

   Starts `VCSERVE_EXE -listen 0` as a child with a journal, learns the
   ephemeral port from the stderr announcement, replays a short
   cohort-derived trace with `VCLOAD_EXE` (two client domains, a couple
   of seconds), then interrupts the server with a single SIGINT and
   requires it to exit 0 promptly. The journal must contain the full
   lifecycle - accepted connections, portal submissions, server.stop
   and listener.stop - which proves the graceful-drain path flushed the
   buffered batches (the tail of a replay run is never lost). Finally
   `VCSTAT_EXE request` joins the client and server journals by trace
   id into smoke_loadgen_request.json, which the dune rule
   schema-checks (>= 99% of client requests must match). Exits
   non-zero with a message on the first failure; children are always
   killed. *)

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("smoke_loadgen: " ^ s);
      exit 1)
    fmt

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let read_all file =
  try In_channel.with_open_text file In_channel.input_all
  with Sys_error _ -> ""

(* Wait (up to ~10s) for "listening on 127.0.0.1:PORT" in the server's
   stderr file. *)
let wait_for_port stderr_file =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let marker = "listening on 127.0.0.1:" in
  let rec poll () =
    let text = read_all stderr_file in
    if contains text marker then begin
      let rec find i =
        if String.sub text i (String.length marker) = marker then i
        else find (i + 1)
      in
      let start = find 0 + String.length marker in
      let rec digits i =
        if i < String.length text && text.[i] >= '0' && text.[i] <= '9' then
          digits (i + 1)
        else i
      in
      let stop = digits start in
      int_of_string (String.sub text start (stop - start))
    end
    else if Unix.gettimeofday () > deadline then
      die "timed out waiting for the listen announcement in %s" stderr_file
    else begin
      Unix.sleepf 0.05;
      poll ()
    end
  in
  poll ()

(* Reap PID, polling up to [timeout_s]; Some status, or None on timeout. *)
let wait_with_timeout pid timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec poll () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then None
      else begin
        Unix.sleepf 0.05;
        poll ()
      end
    | _, status -> Some status
  in
  poll ()

let spawn exe args ~stdout_file ~stderr_file =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let openw f =
    Unix.openfile f [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let out = openw stdout_file and err = openw stderr_file in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) devnull out err in
  Unix.close devnull;
  Unix.close out;
  Unix.close err;
  pid

let () =
  let vcserve_exe, vcload_exe, vcstat_exe =
    match Sys.argv with
    | [| _; serve; load; stat |] -> (serve, load, stat)
    | _ -> die "usage: smoke_loadgen VCSERVE_EXE VCLOAD_EXE VCSTAT_EXE"
  in
  let journal = "smoke_loadgen_journal.jsonl" in
  let client_journal = "smoke_loadgen_client.jsonl" in
  let report = "smoke_loadgen_report.json" in
  let server_pid =
    spawn vcserve_exe
      [ "-listen"; "0"; "-workers"; "2"; "--journal"; journal ]
      ~stdout_file:"smoke_loadgen_server_out.txt"
      ~stderr_file:"smoke_loadgen_server_err.txt"
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill server_pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore
        (try Unix.waitpid [ Unix.WNOHANG ] server_pid
         with Unix.Unix_error _ -> (0, Unix.WEXITED 0)))
    (fun () ->
      let port = wait_for_port "smoke_loadgen_server_err.txt" in
      (* a short but real replay: ~2s, two client domains, the default
         deadline spike, report written for the schema check *)
      let load_pid =
        spawn vcload_exe
          [
            "--journal"; client_journal;
            "-port"; string_of_int port; "-clients"; "2"; "-rps"; "300";
            "-duration"; "2"; "-participants"; "20000"; "-report"; report;
          ]
          ~stdout_file:"smoke_loadgen_load_out.txt"
          ~stderr_file:"smoke_loadgen_load_err.txt"
      in
      (match wait_with_timeout load_pid 60.0 with
      | Some (Unix.WEXITED 0) -> ()
      | Some status ->
        let s =
          match status with
          | Unix.WEXITED n -> Printf.sprintf "exit %d" n
          | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
          | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n
        in
        (try Unix.kill load_pid Sys.sigkill with Unix.Unix_error _ -> ());
        die "vcload failed (%s):\n%s" s
          (read_all "smoke_loadgen_load_err.txt")
      | None ->
        (try Unix.kill load_pid Sys.sigkill with Unix.Unix_error _ -> ());
        die "vcload did not finish within 60s");
      let summary = read_all "smoke_loadgen_load_out.txt" in
      if not (contains summary "replayed ") then
        die "vcload printed no replay summary:\n%s" summary;
      if not (contains summary "cache_hit") then
        die "vcload summary has no outcome breakdown:\n%s" summary;
      (* one SIGINT must shut the server down promptly and exit 0 - the
         graceful-drain path, not a crash *)
      Unix.kill server_pid Sys.sigint;
      (match wait_with_timeout server_pid 10.0 with
      | Some (Unix.WEXITED 0) -> ()
      | Some (Unix.WEXITED n) -> die "server exited %d after SIGINT" n
      | Some (Unix.WSIGNALED n) -> die "server killed by signal %d" n
      | Some (Unix.WSTOPPED _) -> die "server stopped unexpectedly"
      | None -> die "server still running 10s after SIGINT");
      (* the journal must have been flushed on the way out: lifecycle
         events from both ends of the run, plus the submissions the
         replay generated *)
      let text = read_all journal in
      List.iter
        (fun needle ->
          if not (contains text needle) then
            die "journal %s missing %S after graceful shutdown" journal
              needle)
        [
          "listener.start"; "conn.accepted"; "\"submission\"";
          "server.stop"; "listener.stop";
        ];
      (* join the two journals by trace id: every vcload submission
         carried a TRACE operand, so the server-side phase timeline
         must line up with the client-side latency samples *)
      let stat_pid =
        spawn vcstat_exe
          [ "request"; "--format"; "json"; client_journal; journal ]
          ~stdout_file:"smoke_loadgen_request.json"
          ~stderr_file:"smoke_loadgen_stat_err.txt"
      in
      (match wait_with_timeout stat_pid 30.0 with
      | Some (Unix.WEXITED 0) -> ()
      | Some _ ->
        die "vcstat request failed:\n%s"
          (read_all "smoke_loadgen_stat_err.txt")
      | None ->
        (try Unix.kill stat_pid Sys.sigkill with Unix.Unix_error _ -> ());
        die "vcstat request did not finish within 30s");
      let join = read_all "smoke_loadgen_request.json" in
      if not (contains join "\"match_rate\"") then
        die "vcstat request produced no join document:\n%s" join;
      print_endline "smoke_loadgen: ok")
