lib/place/kl.ml: Array Fm Hashtbl List Option Pnet Vc_util
